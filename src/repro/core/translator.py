"""Machine-code to IR translation on emulated CPU state (§2.2.1, §3.3.1).

Every VX instruction is translated line-by-line into loads/stores of
the virtual-state globals plus the IR operations implementing its
semantics, including flag computation.  The resulting IR is verbose and
unrefined — exactly the shape real lifters produce — and relies on the
optimiser (regpromote + DCE) to strip dead flag computations and
redundant state traffic.

Atomic instructions get two translation strategies:

* ``builtin`` (default, Listing 2): map to IR ``cmpxchg``/``atomicrmw``
  marked seq_cst, surrounded by compiler barriers;
* ``naive`` (Listing 1, ablation): decompose into plain loads/stores
  under a single global spinlock.

Memory accesses belonging to the original program are tagged ``orig``;
accesses whose address is derived from the emulated stack pointer are
additionally tagged ``emustack`` (tracked with a per-function forward
dataflow through register copies, so rbp-framed O0 code is covered).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (Block, Cast, ConstantInt, Function, GlobalVar, I1, I8,
                  I32, I64, IRBuilder, Load, Module, Store, Value, const,
                  int_type, type_for_width)
from ..isa import Imm, Instruction, Mem, Reg
from ..isa.spec import SPEC
from .vstate import VirtualState


class TranslationError(Exception):
    """Raised when an instruction cannot be lifted to IR."""


def _mask_const(width: int):
    return const((1 << (width * 8)) - 1)


class BlockTranslator:
    """Translates the straight-line body of one machine basic block."""

    def __init__(self, vstate: VirtualState, builder: IRBuilder,
                 stack_regs: Set[str], atomic_mode: str = "builtin",
                 global_lock: Optional[GlobalVar] = None,
                 lazy_flags: bool = True) -> None:
        self.vstate = vstate
        self.b = builder
        #: Registers currently holding stack-derived values.
        self.stack_regs = set(stack_regs)
        #: Block-local model of the emulated operand stack: one flag per
        #: pushed value, recording whether it was stack-derived.  pops
        #: restore the flag into the destination register, so O0-style
        #: lea/push/pop address plumbing keeps its derivation (and its
        #: accesses keep the emustack tag).  Resets at block entry;
        #: unbalanced pops fall back to "unknown".
        self._push_flags: List[bool] = []
        self.atomic_mode = atomic_mode
        self.global_lock = global_lock
        # Lazy-flag state: the symbolic producer of the current flag
        # values, used to translate a same-block jcc directly into an
        # icmp over the compared values instead of reassembling the
        # condition from the stored flag bits (the standard "flag
        # thunk" trick of real lifters).  The flag globals are still
        # written, so cross-block consumers stay correct; dead flag
        # computation is removed later by DCE.
        #   ("cmp", a, b, width)  after cmp/sub-like instructions
        #   ("val", result, width) after arithmetic/logic (ZF/SF valid)
        #   ("bit", i1)            after cmpxchg (ZF = success)
        self._last_flags: Optional[tuple] = None
        #: Ablation toggle (§3.3.1 discussion): with lazy flags off,
        #: every jcc reconstructs its condition from the stored flag
        #: globals, exactly like a naive lifter.
        self.lazy_flags = lazy_flags

    # -- virtual state access -------------------------------------------------

    def read_reg(self, name: str) -> Value:
        """Current SSA value of a guest register (loads virtual state once)."""
        load = self.b.load(self.vstate.reg(name), 8, name=f"r_{name}")
        load.tags.add("vstate")
        return load

    def write_reg(self, name: str, value: Value) -> None:
        """Set a guest register's SSA value (stored back at block end)."""
        store = self.b.store(value, self.vstate.reg(name), 8)
        store.tags.add("vstate")

    def read_flag(self, name: str) -> Value:
        """Current SSA value of a guest flag, materialising lazy flags."""
        load = self.b.load(self.vstate.flag(name), 1, name=f"f_{name}")
        load.tags.add("vstate")
        return self.b.icmp("ne", load, const(0, 8), name=f"{name}_set")

    def write_flag(self, name: str, value: Value) -> None:
        """Set a guest flag's SSA value."""
        as_byte = self.b.zext(value, I8) if value.type.bits == 1 else value
        store = self.b.store(as_byte, self.vstate.flag(name), 1)
        store.tags.add("vstate")

    # -- operand handling ---------------------------------------------------------

    def mem_addr(self, mem: Mem) -> Tuple[Value, bool]:
        """Compute the effective address; returns (value, stack_derived)."""
        stack_derived = False
        addr: Optional[Value] = None
        if mem.base is not None:
            addr = self.read_reg(mem.base.name)
            stack_derived = mem.base.name in self.stack_regs
        if mem.index is not None:
            idx = self.read_reg(mem.index.name)
            if mem.scale != 1:
                idx = self.b.mul(idx, const(mem.scale))
            addr = idx if addr is None else self.b.add(addr, idx)
            stack_derived = False     # indexed: not "directly derived"
        if mem.disp or addr is None:
            addr = (const(mem.disp) if addr is None
                    else self.b.add(addr, const(mem.disp)))
        return addr, stack_derived

    def _mem_tags(self, stack_derived: bool) -> Tuple[str, ...]:
        return ("orig", "emustack") if stack_derived else ("orig",)

    def read_operand(self, op, width: int) -> Value:
        """Zero-extended 64-bit value of an operand."""
        if isinstance(op, Imm):
            return const(op.value & ((1 << (8 * width)) - 1)
                         if width < 8 else op.value)
        if isinstance(op, Reg):
            value = self.read_reg(op.name)
            if width < 8:
                value = self.b.binop("and", value, _mask_const(width))
            return value
        if isinstance(op, Mem):
            addr, stack = self.mem_addr(op)
            load = self.b.load(addr, width, tags=self._mem_tags(stack))
            if width < 8:
                load = self.b.zext(load, I64)
            return load
        raise TranslationError(f"bad operand {op!r}")

    def write_operand(self, op, value: Value, width: int) -> None:
        """Write a value to a register or memory operand."""
        if isinstance(op, Reg):
            if width < 8:
                value = self.b.binop("and", value, _mask_const(width))
            self.write_reg(op.name, value)
            self.stack_regs.discard(op.name)
            return
        if isinstance(op, Mem):
            addr, stack = self.mem_addr(op)
            narrow = value
            if width < 8:
                narrow = self.b.trunc(value, type_for_width(width))
            self.b.store(narrow, addr, width, tags=self._mem_tags(stack))
            return
        raise TranslationError(f"bad destination {op!r}")

    # -- flag computation ------------------------------------------------------------

    def set_zs(self, result: Value, width: int) -> None:
        """Set ZF/SF from a result (the common arithmetic tail)."""
        masked = result
        if width < 8:
            masked = self.b.binop("and", result, _mask_const(width))
        self.write_flag("zf", self.b.icmp("eq", masked, const(0)))
        bit = self.b.binop("lshr", masked, const(width * 8 - 1))
        bit = self.b.binop("and", bit, const(1))
        self.write_flag("sf", self.b.icmp("ne", bit, const(0)))

    def _sign_bit(self, value: Value, width: int) -> Value:
        bit = self.b.binop("lshr", value, const(width * 8 - 1))
        return self.b.binop("and", bit, const(1))

    def flags_add(self, a: Value, b_val: Value, width: int) -> Value:
        """Full flag computation for addition (CF/OF included)."""
        full = self.b.add(a, b_val)
        result = full
        if width < 8:
            result = self.b.binop("and", full, _mask_const(width))
            self.write_flag("cf", self.b.icmp("ugt", full,
                                              _mask_const(width)))
        else:
            self.write_flag("cf", self.b.icmp("ult", full, a))
        xa = self.b.binop("xor", result, a)
        xb = self.b.binop("xor", result, b_val)
        both = self.b.binop("and", xa, xb)
        self.write_flag("of", self.b.icmp(
            "ne", self._of_bit(both, width), const(0)))
        self.set_zs(result, width)
        self._last_flags = ("val", result, width)
        return result

    def _of_bit(self, value: Value, width: int) -> Value:
        bit = self.b.binop("lshr", value, const(width * 8 - 1))
        return self.b.binop("and", bit, const(1))

    def flags_sub(self, a: Value, b_val: Value, width: int) -> Value:
        """Full flag computation for subtraction/compare."""
        result = self.b.sub(a, b_val)
        if width < 8:
            result = self.b.binop("and", result, _mask_const(width))
        self.write_flag("cf", self.b.icmp("ult", a, b_val))
        xab = self.b.binop("xor", a, b_val)
        xar = self.b.binop("xor", a, result)
        both = self.b.binop("and", xab, xar)
        self.write_flag("of", self.b.icmp(
            "ne", self._of_bit(both, width), const(0)))
        self.set_zs(result, width)
        self._last_flags = ("val", result, width)
        return result

    def flags_logic(self, result: Value, width: int) -> Value:
        """Flag computation for and/or/xor (CF=OF=0)."""
        if width < 8:
            result = self.b.binop("and", result, _mask_const(width))
        self.write_flag("cf", const(0, 1))
        self.write_flag("of", const(0, 1))
        self.set_zs(result, width)
        self._last_flags = ("val", result, width)
        return result

    # -- instruction dispatch ------------------------------------------------------------

    def translate(self, instr: Instruction) -> None:
        """Translate one decoded instruction into IR."""
        handler = getattr(self, f"tr_{instr.mnemonic}", None)
        if handler is None:
            raise TranslationError(
                f"unsupported instruction {instr.mnemonic!r} at "
                f"{instr.address:#x}" if instr.address is not None
                else f"unsupported instruction {instr.mnemonic!r}")
        handler(instr)

    # -- data movement -----------------------------------------------------------------

    def tr_mov(self, instr: Instruction) -> None:
        """mov: plain data movement, any operand mix."""
        dst, src = instr.operands
        value = self.read_operand(src, instr.width)
        # Track stack-pointer propagation (mov rbp, rsp and friends).
        if isinstance(dst, Reg) and isinstance(src, Reg):
            if src.name in self.stack_regs:
                self.write_reg(dst.name, value)
                self.stack_regs.add(dst.name)
                return
        self.write_operand(dst, value, instr.width)

    def tr_movsx(self, instr: Instruction) -> None:
        """movsx: sign-extending load/move."""
        dst, src = instr.operands
        value = self.read_operand(src, instr.width)
        if instr.width < 8:
            narrow = self.b.trunc(value, type_for_width(instr.width))
            value = self.b.sext(narrow, I64)
        self.write_operand(dst, value, 8)

    def tr_lea(self, instr: Instruction) -> None:
        """lea: materialise the effective address."""
        dst, src = instr.operands
        addr, stack = self.mem_addr(src)
        self.write_reg(dst.name, addr)
        if stack:
            self.stack_regs.add(dst.name)
        else:
            self.stack_regs.discard(dst.name)

    def tr_push(self, instr: Instruction) -> None:
        """push: decrement vrsp, store to the emulated stack."""
        value = self.read_operand(instr.operands[0], 8)
        source = instr.operands[0]
        derived = isinstance(source, Reg) and source.name in self.stack_regs
        self._push_flags.append(derived)
        rsp = self.read_reg("rsp")
        new_rsp = self.b.sub(rsp, const(8))
        self.write_reg("rsp", new_rsp)
        self.b.store(value, new_rsp, 8, tags=("orig", "emustack"))

    def tr_pop(self, instr: Instruction) -> None:
        """pop: load from the emulated stack, increment vrsp."""
        rsp = self.read_reg("rsp")
        value = self.b.load(rsp, 8, tags=("orig", "emustack"))
        self.write_reg("rsp", self.b.add(rsp, const(8)))
        self.write_operand(instr.operands[0], value, 8)
        dest = instr.operands[0]
        if isinstance(dest, Reg):
            derived = self._push_flags.pop() if self._push_flags else False
            if derived:
                self.stack_regs.add(dest.name)
            else:
                self.stack_regs.discard(dest.name)

    def tr_xchg(self, instr: Instruction) -> None:
        """xchg: atomic swap with memory (plain swap reg-reg)."""
        a, b_op = instr.operands
        if isinstance(a, Mem) or isinstance(b_op, Mem):
            # Implicitly locked: lift as an atomic exchange (§3.3.1).
            mem = a if isinstance(a, Mem) else b_op
            reg = b_op if isinstance(a, Mem) else a
            self.b.compiler_barrier()
            addr, _ = self.mem_addr(mem)
            value = self.read_operand(reg, instr.width)
            if instr.width < 8:
                value = self.b.trunc(value, type_for_width(instr.width))
            if self.atomic_mode == "naive":
                old = self._naive_rmw("xchg", addr, value, instr.width)
            elif self.atomic_mode == "nonatomic":
                old = self._plain_rmw("xchg", addr, value, instr.width)
            else:
                old = self.b.atomicrmw("xchg", addr, value, instr.width)
            wide = self.b.zext(old, I64) if instr.width < 8 else old
            self.write_operand(reg, wide, instr.width)
            self.b.compiler_barrier()
            return
        va = self.read_operand(a, instr.width)
        vb = self.read_operand(b_op, instr.width)
        self.write_operand(a, vb, instr.width)
        self.write_operand(b_op, va, instr.width)

    # -- arithmetic -----------------------------------------------------------------------

    def _binary(self, instr: Instruction, flags_fn) -> None:
        dst, src = instr.operands
        if instr.lock and isinstance(dst, Mem):
            self._locked_binop(instr)
            return
        a = self.read_operand(dst, instr.width)
        b_val = self.read_operand(src, instr.width)
        result = flags_fn(a, b_val, instr.width)
        self.write_operand(dst, result, instr.width)
        if isinstance(dst, Reg):
            self.stack_regs.discard(dst.name)

    def tr_add(self, instr: Instruction) -> None:
        """add + flags."""
        dst, src = instr.operands
        # add/sub of a constant keeps a stack-derived register stack-
        # derived (the "directly derived" rule of §3.3.4).
        keep_stack = (isinstance(dst, Reg) and dst.name in self.stack_regs
                      and isinstance(src, Imm))
        self._binary(instr, self.flags_add)
        if keep_stack:
            self.stack_regs.add(dst.name)

    def tr_sub(self, instr: Instruction) -> None:
        """sub + flags."""
        dst, src = instr.operands
        keep_stack = (isinstance(dst, Reg) and dst.name in self.stack_regs
                      and isinstance(src, Imm))
        self._binary(instr, self.flags_sub)
        if keep_stack:
            self.stack_regs.add(dst.name)

    def tr_and(self, instr: Instruction) -> None:
        """and + logic flags."""
        self._binary(instr, lambda a, b, w: self.flags_logic(
            self.b.binop("and", a, b), w))

    def tr_or(self, instr: Instruction) -> None:
        """or + logic flags."""
        self._binary(instr, lambda a, b, w: self.flags_logic(
            self.b.binop("or", a, b), w))

    def tr_xor(self, instr: Instruction) -> None:
        """xor + logic flags."""
        self._binary(instr, lambda a, b, w: self.flags_logic(
            self.b.binop("xor", a, b), w))

    def tr_shl(self, instr: Instruction) -> None:
        """shl + ZF/SF."""
        self._binary(instr, lambda a, b, w: self.flags_logic(
            self.b.binop("shl", a, self.b.binop("and", b, const(63))), w))

    def tr_shr(self, instr: Instruction) -> None:
        """shr (logical) + ZF/SF."""
        def fn(a, b, w):
            if w < 8:
                a = self.b.binop("and", a, _mask_const(w))
            return self.flags_logic(
                self.b.binop("lshr", a, self.b.binop("and", b, const(63))), w)
        self._binary(instr, fn)

    def tr_sar(self, instr: Instruction) -> None:
        """sar (arithmetic) + ZF/SF."""
        def fn(a, b, w):
            if w < 8:
                narrow = self.b.trunc(a, type_for_width(w))
                a = self.b.sext(narrow, I64)
            shifted = self.b.binop("ashr", a,
                                   self.b.binop("and", b, const(63)))
            return self.flags_logic(shifted, w)
        self._binary(instr, fn)

    def tr_imul(self, instr: Instruction) -> None:
        """imul + ZF/SF."""
        def fn(a, b, w):
            return self.flags_logic(self.b.mul(a, b), w)
        self._binary(instr, fn)

    def _signed_value(self, value: Value, width: int) -> Value:
        if width == 8:
            return value
        narrow = self.b.trunc(value, type_for_width(width))
        return self.b.sext(narrow, I64)

    def tr_idiv(self, instr: Instruction) -> None:
        """idiv (signed quotient)."""
        def fn(a, b, w):
            sa = self._signed_value(a, w)
            sb = self._signed_value(b, w)
            return self.flags_logic(self.b.binop("sdiv", sa, sb), w)
        self._binary(instr, fn)

    def tr_irem(self, instr: Instruction) -> None:
        """irem (signed remainder)."""
        def fn(a, b, w):
            sa = self._signed_value(a, w)
            sb = self._signed_value(b, w)
            return self.flags_logic(self.b.binop("srem", sa, sb), w)
        self._binary(instr, fn)

    def tr_neg(self, instr: Instruction) -> None:
        """neg + flags."""
        dst = instr.operands[0]
        a = self.read_operand(dst, instr.width)
        result = self.flags_sub(const(0), a, instr.width)
        self.write_operand(dst, result, instr.width)

    def tr_not(self, instr: Instruction) -> None:
        """not (no flags)."""
        dst = instr.operands[0]
        a = self.read_operand(dst, instr.width)
        result = self.b.binop("xor", a, const(-1))
        if instr.width < 8:
            result = self.b.binop("and", result, _mask_const(instr.width))
        self.write_operand(dst, result, instr.width)

    def _inc_dec(self, instr: Instruction, is_inc: bool) -> None:
        dst = instr.operands[0]
        if instr.lock and isinstance(dst, Mem):
            self._locked_binop(instr, forced_value=const(1),
                               forced_op="add" if is_inc else "sub",
                               preserve_cf=True)
            return
        saved_cf = self.read_flag("cf")
        a = self.read_operand(dst, instr.width)
        fn = self.flags_add if is_inc else self.flags_sub
        result = fn(a, const(1), instr.width)
        self.write_flag("cf", saved_cf)     # INC/DEC preserve CF
        self.write_operand(dst, result, instr.width)

    def tr_inc(self, instr: Instruction) -> None:
        """inc (CF preserved)."""
        self._inc_dec(instr, True)

    def tr_dec(self, instr: Instruction) -> None:
        """dec (CF preserved)."""
        self._inc_dec(instr, False)

    def tr_cmp(self, instr: Instruction) -> None:
        """cmp: flags only, records the lazy-compare pair."""
        a = self.read_operand(instr.operands[0], instr.width)
        b_val = self.read_operand(instr.operands[1], instr.width)
        self.flags_sub(a, b_val, instr.width)
        self._last_flags = ("cmp", a, b_val, instr.width)

    def tr_test(self, instr: Instruction) -> None:
        """test: logic flags of a & b."""
        a = self.read_operand(instr.operands[0], instr.width)
        b_val = self.read_operand(instr.operands[1], instr.width)
        self.flags_logic(self.b.binop("and", a, b_val), instr.width)

    # -- atomics (§3.3.1) ---------------------------------------------------------------------

    def _locked_binop(self, instr: Instruction,
                      forced_value: Optional[Value] = None,
                      forced_op: Optional[str] = None,
                      preserve_cf: bool = False) -> None:
        """LOCK add/sub/and/or/xor/inc/dec with a memory destination."""
        op = forced_op or SPEC[instr.mnemonic].alu_op
        if op is None:
            raise TranslationError(
                f"no atomic RMW lowering for {instr.mnemonic!r}")
        dst = instr.operands[0]
        saved_cf = self.read_flag("cf") if preserve_cf else None
        self.b.compiler_barrier()
        addr, _ = self.mem_addr(dst)
        value = forced_value if forced_value is not None else \
            self.read_operand(instr.operands[1], instr.width)
        narrow = value
        if instr.width < 8 and not isinstance(value, ConstantInt):
            narrow = self.b.trunc(value, type_for_width(instr.width))
        elif instr.width < 8:
            narrow = ConstantInt(value.value, type_for_width(instr.width))
        if self.atomic_mode == "naive":
            old = self._naive_rmw(op, addr, narrow, instr.width)
        elif self.atomic_mode == "nonatomic":
            old = self._plain_rmw(op, addr, narrow, instr.width)
        else:
            old = self.b.atomicrmw(op, addr, narrow, instr.width)
        wide_old = self.b.zext(old, I64) if instr.width < 8 else old
        wide_val = self.b.zext(narrow, I64) \
            if instr.width < 8 and narrow.type.bits < 64 else value
        # Flags reflect the result of the arithmetic.
        if op == "add":
            self.flags_add(wide_old, wide_val, instr.width)
        elif op == "sub":
            self.flags_sub(wide_old, wide_val, instr.width)
        else:
            self.flags_logic(self.b.binop(op, wide_old, wide_val),
                             instr.width)
        if saved_cf is not None:
            self.write_flag("cf", saved_cf)
        self.b.compiler_barrier()

    def tr_xadd(self, instr: Instruction) -> None:
        """lock xadd -> AtomicRMW add returning the old value."""
        dst, src = instr.operands
        if isinstance(dst, Mem) and instr.lock:
            self.b.compiler_barrier()
            addr, _ = self.mem_addr(dst)
            value = self.read_operand(src, instr.width)
            narrow = value
            if instr.width < 8:
                narrow = self.b.trunc(value, type_for_width(instr.width))
            if self.atomic_mode == "naive":
                old = self._naive_rmw("add", addr, narrow, instr.width)
            elif self.atomic_mode == "nonatomic":
                old = self._plain_rmw("add", addr, narrow, instr.width)
            else:
                old = self.b.atomicrmw("add", addr, narrow, instr.width)
            wide_old = self.b.zext(old, I64) if instr.width < 8 else old
            self.flags_add(wide_old, value, instr.width)
            self.write_operand(src, wide_old, instr.width)
            self.b.compiler_barrier()
            return
        # Non-locked xadd: plain read-modify-write.
        a = self.read_operand(dst, instr.width)
        b_val = self.read_operand(src, instr.width)
        result = self.flags_add(a, b_val, instr.width)
        self.write_operand(dst, result, instr.width)
        self.write_operand(src, a, instr.width)

    def tr_cmpxchg(self, instr: Instruction) -> None:
        """Listing 2: builtin translation of ``lock cmpxchg``.

        The write to the virtual rax happens as a separate instruction
        that depends on the cmpxchg result; compiler barriers stop the
        surrounding virtual-register traffic from being reordered
        across it, and the cmpxchg itself is seq_cst.
        """
        dst, src = instr.operands
        width = instr.width
        self.b.compiler_barrier()
        expected_full = self.read_reg("rax")
        expected = expected_full
        if width < 8:
            expected = self.b.binop("and", expected_full, _mask_const(width))
        new = self.read_operand(src, width)
        nexpected = expected
        nnew = new
        if width < 8:
            nexpected = self.b.trunc(expected, type_for_width(width))
            nnew = self.b.trunc(new, type_for_width(width))
        if isinstance(dst, Mem):
            addr, _ = self.mem_addr(dst)
            if self.atomic_mode == "naive":
                old = self._naive_cmpxchg(addr, nexpected, nnew, width)
            elif self.atomic_mode == "nonatomic":
                old = self._plain_cmpxchg(addr, nexpected, nnew, width)
            else:
                old = self.b.cmpxchg(addr, nexpected, nnew, width,
                                     name="cx_old")
        else:
            # Register form (no memory, no atomicity needed).
            current = self.read_operand(dst, width)
            eq = self.b.icmp("eq", current, expected)
            self.write_operand(dst, self.b.select(eq, new, current), width)
            old = self.b.trunc(current, type_for_width(width)) \
                if width < 8 else current
        wide_old = self.b.zext(old, I64) if width < 8 else old
        # Full compare flags of (expected - observed), exactly as the
        # emulator computes them; ZF doubles as the success bit.
        self.flags_sub(expected, wide_old, width)
        success = self.b.icmp("eq", wide_old, expected, name="cx_eq")
        self._last_flags = ("bit", success)
        # rax is updated with the observed value only on failure.
        rax_new = self.b.select(success, expected_full, wide_old)
        self.write_reg("rax", rax_new)
        self.b.compiler_barrier()

    # -- the naive (Listing 1) translation, used for the ablation ------------------------------

    def _naive_lock(self) -> None:
        # Spin on the global lock with an atomic exchange.  The lock
        # itself must still be hardware-atomic, so even the "naive"
        # strategy needs one RMW primitive — the point of the ablation
        # is the *global serialisation*, not lock-freedom.
        assert self.global_lock is not None
        spin = self.b.atomicrmw("xchg", self.global_lock, const(1), 8,
                                name="gl_old")
        spin.tags.add("naive_lock_spin")

    def _naive_unlock(self) -> None:
        self.b.store(const(0), self.global_lock, 8, ordering="release")

    def _naive_rmw(self, op: str, addr: Value, value: Value,
                   width: int) -> Value:
        # NOTE: the straight-line translator cannot emit a spin *loop*;
        # the lifter wraps blocks containing naive_lock_spin markers in
        # a retry loop during stitching (see lifter._expand_naive).
        self._naive_lock()
        old = self.b.load(addr, width, name="nv_old", tags=("orig",))
        if op == "xchg":
            new = value
        else:
            wide_old = self.b.zext(old, I64) if width < 8 else old
            wide_val = self.b.zext(value, I64) if value.type.bits < 64 \
                else value
            result = self.b.binop(op, wide_old, wide_val)
            new = self.b.trunc(result, type_for_width(width)) \
                if width < 8 else result
        self.b.store(new, addr, width, tags=("orig",))
        self._naive_unlock()
        return old

    def _plain_rmw(self, op: str, addr: Value, value: Value,
                   width: int) -> Value:
        """Non-atomic decomposition (McSema's experimental path): the
        read-modify-write loses hardware atomicity entirely, so
        concurrent threads race between the load and the store."""
        old = self.b.load(addr, width, name="pl_old", tags=("orig",))
        if op == "xchg":
            new = value
        else:
            wide_old = self.b.zext(old, I64) if width < 8 else old
            wide_val = self.b.zext(value, I64) if value.type.bits < 64 \
                else value
            result = self.b.binop(op, wide_old, wide_val)
            new = self.b.trunc(result, type_for_width(width)) \
                if width < 8 else result
        self.b.store(new, addr, width, tags=("orig",))
        return old

    def _plain_cmpxchg(self, addr: Value, expected: Value, new: Value,
                       width: int) -> Value:
        old = self.b.load(addr, width, name="pl_old", tags=("orig",))
        wide_old = self.b.zext(old, I64) if width < 8 else old
        wide_exp = self.b.zext(expected, I64) if expected.type.bits < 64 \
            else expected
        eq = self.b.icmp("eq", wide_old, wide_exp)
        stored = self.b.select(eq, new, old)
        self.b.store(stored, addr, width, tags=("orig",))
        return old

    def _naive_cmpxchg(self, addr: Value, expected: Value, new: Value,
                       width: int) -> Value:
        self._naive_lock()
        old = self.b.load(addr, width, name="nv_old", tags=("orig",))
        wide_old = self.b.zext(old, I64) if width < 8 else old
        wide_exp = self.b.zext(expected, I64) if expected.type.bits < 64 \
            else expected
        eq = self.b.icmp("eq", wide_old, wide_exp)
        stored = self.b.select(eq, new, old)
        self.b.store(stored, addr, width, tags=("orig",))
        self._naive_unlock()
        return old

    # -- fences / misc ---------------------------------------------------------------------------

    def tr_mfence(self, instr: Instruction) -> None:
        """mfence -> seq_cst fence."""
        fence = self.b.fence("seq_cst")
        fence.tags.add("orig")

    def tr_nop(self, instr: Instruction) -> None:
        """nop: nothing."""
        pass

    def tr_rdtls(self, instr: Instruction) -> None:
        """rdtls: read the thread-local-storage base register."""
        raise TranslationError(
            f"rdtls at {instr.address:#x}: TLS-base reads cannot be lifted")

    # -- SIMD (lane-by-lane scalarisation, §4.2 performance discussion) ------------------------

    def _xmm_lane_addr(self, reg: Reg, lane: int) -> Value:
        base = self.vstate.xmm[reg.name]
        if lane == 0:
            return base
        return self.b.add(base, const(lane * 4))

    def _read_xmm_lane(self, reg: Reg, lane: int) -> Value:
        load = self.b.load(self._xmm_lane_addr(reg, lane), 4,
                           name=f"{reg.name}_l{lane}")
        load.tags.add("vstate")
        return load

    def _write_xmm_lane(self, reg: Reg, lane: int, value: Value) -> None:
        store = self.b.store(value, self._xmm_lane_addr(reg, lane), 4)
        store.tags.add("vstate")

    def tr_movdq(self, instr: Instruction) -> None:
        """movdq: 128-bit lane move (two i64 halves)."""
        dst, src = instr.operands
        if isinstance(dst, Reg) and isinstance(src, Mem):
            addr, stack = self.mem_addr(src)
            for lane in range(4):
                lane_addr = addr if lane == 0 else \
                    self.b.add(addr, const(lane * 4))
                value = self.b.load(lane_addr, 4,
                                    tags=self._mem_tags(stack))
                self._write_xmm_lane(dst, lane, value)
            return
        if isinstance(dst, Mem) and isinstance(src, Reg):
            addr, stack = self.mem_addr(dst)
            for lane in range(4):
                lane_addr = addr if lane == 0 else \
                    self.b.add(addr, const(lane * 4))
                value = self._read_xmm_lane(src, lane)
                self.b.store(value, lane_addr, 4,
                             tags=self._mem_tags(stack))
            return
        for lane in range(4):
            self._write_xmm_lane(dst, lane, self._read_xmm_lane(src, lane))

    def _vec_binop(self, instr: Instruction, op: str) -> None:
        dst, src = instr.operands
        for lane in range(4):
            a = self._read_xmm_lane(dst, lane)
            if isinstance(src, Reg) and src.is_vector:
                b_val = self._read_xmm_lane(src, lane)
            elif isinstance(src, Mem):
                addr, stack = self.mem_addr(src)
                lane_addr = addr if lane == 0 else \
                    self.b.add(addr, const(lane * 4))
                b_val = self.b.load(lane_addr, 4,
                                    tags=self._mem_tags(stack))
            else:
                raise TranslationError(f"bad SIMD operand {src!r}")
            result = self.b.binop(op, a, b_val)
            self._write_xmm_lane(dst, lane, result)

    def tr_paddd(self, instr: Instruction) -> None:
        """paddd: 4 x i32 lane add."""
        self._vec_binop(instr, "add")

    def tr_psubd(self, instr: Instruction) -> None:
        """psubd: 4 x i32 lane subtract."""
        self._vec_binop(instr, "sub")

    def tr_pmulld(self, instr: Instruction) -> None:
        """pmulld: 4 x i32 lane multiply."""
        self._vec_binop(instr, "mul")

    def tr_pxor(self, instr: Instruction) -> None:
        """pxor: 128-bit xor."""
        self._vec_binop(instr, "xor")

    def tr_pextrd(self, instr: Instruction) -> None:
        """pextrd: extract one i32 lane."""
        dst, src, lane = instr.operands
        value = self._read_xmm_lane(src, lane.value & 3)
        self.write_reg(dst.name, self.b.zext(value, I64))

    def tr_pinsrd(self, instr: Instruction) -> None:
        """pinsrd: insert one i32 lane."""
        dst, src, lane = instr.operands
        value = self.read_operand(src, 4)
        narrow = self.b.trunc(value, I32)
        self._write_xmm_lane(dst, lane.value & 3, narrow)

    def tr_pbroadcastd(self, instr: Instruction) -> None:
        """pbroadcastd: splat one i32 across lanes."""
        dst, src = instr.operands
        value = self.read_operand(src, 4)
        narrow = self.b.trunc(value, I32)
        for lane in range(4):
            self._write_xmm_lane(dst, lane, narrow)

    # -- conditions for jcc terminators ------------------------------------------------------------
    # All three paths (fused compare, value test, generic flag
    # reconstruction) are driven by the ISA spec's per-jcc declarations
    # (cmp_pred / val_pred / cond_expr) — the same records the emulator
    # evaluates, so the two layers cannot drift.

    def _at_width(self, value: Value, width: int) -> Value:
        if width == 8:
            return value
        if isinstance(value, ConstantInt):
            return ConstantInt(value.value, type_for_width(width))
        return self.b.trunc(value, type_for_width(width))

    def _cond_ir(self, expr) -> Value:
        """Lower a spec condition expression over the flag globals.

        Leaves are flag reads (i1); inner nodes combine them at i8 so
        regpromote sees plain integer traffic, mirroring the shapes the
        old hand-written reconstruction produced.
        """
        b = self.b
        if isinstance(expr, str):
            return self.read_flag(expr)
        op = expr[0]
        if op == "not":
            inner = self._cond_ir(expr[1])
            return b.icmp("eq", b.zext(inner, I8), const(0, 8))
        lhs = b.zext(self._cond_ir(expr[1]), I8)
        rhs = b.zext(self._cond_ir(expr[2]), I8)
        if op in ("eq", "ne"):
            return b.icmp(op, lhs, rhs)
        if op in ("and", "or"):
            return b.icmp("ne", b.binop(op, lhs, rhs), const(0, 8))
        raise TranslationError(f"bad condition expression {expr!r}")

    def condition(self, mnemonic: str) -> Value:
        """The i1 for a jCC mnemonic (fused-compare fast path aware)."""
        b = self.b
        spec = SPEC.get(mnemonic)
        if spec is None or spec.cond_expr is None:
            raise TranslationError(f"bad condition {mnemonic}")
        last = self._last_flags if self.lazy_flags else None
        if last is not None:
            if last[0] == "cmp" and spec.cmp_pred is not None:
                _tag, lhs, rhs, width = last
                return b.icmp(spec.cmp_pred,
                              self._at_width(lhs, width),
                              self._at_width(rhs, width))
            if last[0] == "val" and spec.val_pred is not None:
                _tag, result, width = last
                narrow = self._at_width(result, width)
                return b.icmp(spec.val_pred, narrow,
                              ConstantInt(0, type_for_width(width)))
            if last[0] == "bit":
                if mnemonic == "je":
                    return last[1]
                if mnemonic == "jne":
                    return b.icmp("eq", b.zext(last[1], I8), const(0, 8))
        return self._cond_ir(spec.cond_expr)
