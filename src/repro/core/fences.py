"""Fence insertion for lifted multithreaded code (§3.3.4).

Adopts Lasagne's strategy: an ``acquire`` fence after every load and a
``release`` fence before every store *belonging to the original
program*, preventing the optimiser from reordering shared memory
accesses.  Two refinements from the paper:

* accesses whose address is derived directly from the emulated stack
  pointer (tagged ``emustack`` by the translator) get no fences — the
  stack is thread-exclusive;
* adjacent (redundant) fences are merged.

Fences inserted here are tagged ``lasagne`` so the fence-removal
optimisation (§3.4) can strip exactly what this pass added.
"""

from __future__ import annotations

from typing import List

from ..ir import (AtomicRMW, Block, Call, Cmpxchg, CompilerBarrier, Fence,
                  Function, Instruction, Load, Module, Store)
from ..passes import Pass


def _is_program_access(instr: Instruction) -> bool:
    return "orig" in instr.tags and "emustack" not in instr.tags


class FenceInsertion(Pass):
    """Lasagne-style fence insertion around shared-memory accesses.

    ``exempt_stack=False`` disables the §3.3.4 emulated-stack exemption
    and fences *every* original access — the ablation baseline showing
    why stack-derivation tracking matters.
    """
    name = "fence-insertion"

    def __init__(self, exempt_stack: bool = True) -> None:
        self.exempt_stack = exempt_stack

    def run_function(self, fn: Function, module: Module) -> bool:
        """Insert acquire/release fences (emulated-stack traffic excepted)."""
        def eligible(instr: Instruction) -> bool:
            if self.exempt_stack:
                return _is_program_access(instr)
            return "orig" in instr.tags

        changed = False
        for block in fn.blocks:
            index = 0
            while index < len(block.instructions):
                instr = block.instructions[index]
                if isinstance(instr, Load) and eligible(instr) \
                        and instr.ordering is None:
                    fence = Fence("acquire")
                    fence.tags.add("lasagne")
                    block.insert(index + 1, fence)
                    index += 2
                    changed = True
                    continue
                if isinstance(instr, Store) and eligible(instr) \
                        and instr.ordering is None:
                    fence = Fence("release")
                    fence.tags.add("lasagne")
                    block.insert(index, fence)
                    index += 2
                    changed = True
                    continue
                index += 1
        return changed


class FenceMerge(Pass):
    """Merges adjacent fences with no memory operation between them."""

    name = "fence-merge"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Merge adjacent/redundant fences within a block."""
        changed = False
        for block in fn.blocks:
            to_remove: List[Fence] = []
            pending: Fence = None
            for instr in block.instructions:
                if isinstance(instr, Fence):
                    if pending is not None:
                        # Keep the stronger of the two orderings.
                        weaker = instr if _strength(instr) <= \
                            _strength(pending) else pending
                        keeper = pending if weaker is instr else instr
                        to_remove.append(weaker)
                        pending = keeper
                    else:
                        pending = instr
                    continue
                if isinstance(instr, (Load, Store, Cmpxchg, AtomicRMW,
                                      Call, CompilerBarrier)):
                    pending = None
            for fence in to_remove:
                block.remove(fence)
                changed = True
        return changed


def _strength(fence: Fence) -> int:
    return {"monotonic": 0, "acquire": 1, "release": 1, "acq_rel": 2,
            "seq_cst": 3}[fence.ordering]


def remove_lasagne_fences(module: Module) -> int:
    """Strip every fence the insertion pass added (§3.4 fence removal).

    Applied only after the spinloop analysis has shown the binary free
    of implicit synchronisation primitives.  Returns the count removed.
    """
    removed = 0
    for fn in module.functions:
        for block in fn.blocks:
            for instr in list(block.instructions):
                if isinstance(instr, Fence) and "lasagne" in instr.tags:
                    block.remove(instr)
                    removed += 1
    return removed


def count_fences(module: Module) -> int:
    """Total Fence instructions in the module."""
    return sum(1 for fn in module.functions
               for block in fn.blocks
               for instr in block.instructions
               if isinstance(instr, Fence))
