"""Flat segmented memory for the VX machine.

Memory is a set of non-overlapping segments.  Reads and writes resolve
the containing segment (with a one-entry cache, since accesses are
strongly local) and fault on unmapped addresses — the behaviour that
makes incorrectly recompiled binaries *observably* crash, which the
evaluation relies on.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

#: Packers for the dominant access widths.  ``unpack_from``/``pack_into``
#: work directly against a segment's backing bytearray, skipping the
#: intermediate ``bytes`` copy the generic path pays per access.
U32 = struct.Struct("<I")
U64 = struct.Struct("<Q")


class MemoryFault(Exception):
    """An access to unmapped (or truncated) memory."""

    def __init__(self, addr: int, size: int, kind: str) -> None:
        super().__init__(f"{kind} fault: {size} bytes at {addr:#x}")
        self.addr = addr
        self.size = size
        self.kind = kind


class _Segment:
    __slots__ = ("start", "end", "data", "name")

    def __init__(self, start: int, data: bytearray, name: str) -> None:
        self.start = start
        self.end = start + len(data)
        self.data = data
        self.name = name


class Memory:
    """Sparse flat memory composed of mapped segments."""

    def __init__(self) -> None:
        self._segments: List[_Segment] = []
        self._last: Optional[_Segment] = None
        # Per-thread last-hit segments: threads interleave at quantum
        # granularity, and each tends to hammer its own stack/heap
        # region, so a context switch restores that thread's locality
        # instead of starting every quantum with a cache miss.
        self._thread_last: Dict[int, Optional[_Segment]] = {}
        self._cur_tid: Optional[int] = None

    # -- mapping -------------------------------------------------------------

    def map(self, addr: int, data_or_size, name: str = "anon") -> None:
        """Map a segment at ``addr`` from bytes or a zero-filled size."""
        if isinstance(data_or_size, int):
            data = bytearray(data_or_size)
        else:
            data = bytearray(data_or_size)
        new = _Segment(addr, data, name)
        for seg in self._segments:
            if new.start < seg.end and seg.start < new.end:
                raise MemoryFault(addr, len(data), "map-overlap")
        self._segments.append(new)
        self._segments.sort(key=lambda seg: seg.start)
        self._last = None
        self._thread_last.clear()

    def unmap(self, addr: int) -> None:
        """Remove the segment starting exactly at ``addr``."""
        for i, seg in enumerate(self._segments):
            if seg.start == addr:
                del self._segments[i]
                self._last = None
                self._thread_last.clear()
                return
        raise MemoryFault(addr, 0, "unmap")

    def select_thread(self, tid: int) -> None:
        """Switch the one-entry segment cache to ``tid``'s last hit.

        Called by the scheduler at every pick; a no-op when the same
        thread keeps running.  Purely an optimisation — resolution and
        fault behaviour are identical whichever segment is cached.
        """
        cur = self._cur_tid
        if tid != cur:
            if cur is not None:
                self._thread_last[cur] = self._last
            self._last = self._thread_last.get(tid)
            self._cur_tid = tid

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True if [addr, addr+size) lies inside one mapped segment."""
        seg = self._find(addr)
        return seg is not None and addr + size <= seg.end

    def segments(self) -> List[Tuple[int, int, str]]:
        """(start, size, name) for every mapped segment, ascending."""
        return [(seg.start, seg.end - seg.start, seg.name)
                for seg in self._segments]

    # -- access --------------------------------------------------------------

    def _find(self, addr: int) -> Optional[_Segment]:
        last = self._last
        if last is not None and last.start <= addr < last.end:
            return last
        lo, hi = 0, len(self._segments)
        while lo < hi:
            mid = (lo + hi) // 2
            seg = self._segments[mid]
            if addr < seg.start:
                hi = mid
            elif addr >= seg.end:
                lo = mid + 1
            else:
                self._last = seg
                return seg
        return None

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes; faults on unmapped addresses."""
        seg = self._find(addr)
        if seg is None or addr + size > seg.end:
            raise MemoryFault(addr, size, "read")
        off = addr - seg.start
        return bytes(seg.data[off:off + size])

    def write(self, addr: int, data: bytes) -> None:
        """Write bytes; faults on unmapped or read-only addresses."""
        seg = self._find(addr)
        if seg is None or addr + len(data) > seg.end:
            raise MemoryFault(addr, len(data), "write")
        off = addr - seg.start
        seg.data[off:off + len(data)] = data

    def read_int(self, addr: int, width: int, signed: bool = False) -> int:
        """Read a little-endian integer of ``width`` bytes.

        4- and 8-byte loads that hit the cached segment unpack straight
        from its backing bytearray (no intermediate bytes copy); every
        other case — cache miss, odd width, segment-boundary overrun —
        falls through to :meth:`read`, which resolves and faults with
        the exact historical ``MemoryFault(addr, width, "read")``.
        """
        seg = self._last
        if seg is not None and seg.start <= addr:
            off = addr - seg.start
            if width == 8:
                if addr + 8 <= seg.end:
                    val = U64.unpack_from(seg.data, off)[0]
                    if signed and val >= 0x8000000000000000:
                        return val - 0x10000000000000000
                    return val
            elif width == 4:
                if addr + 4 <= seg.end:
                    val = U32.unpack_from(seg.data, off)[0]
                    if signed and val >= 0x80000000:
                        return val - 0x100000000
                    return val
        raw = self.read(addr, width)
        return int.from_bytes(raw, "little", signed=signed)

    def write_int(self, addr: int, value: int, width: int) -> None:
        """Write a little-endian integer of ``width`` bytes.

        Mirrors :meth:`read_int`: 4/8-byte stores into the cached
        segment pack in place, everything else goes through
        :meth:`write` for identical fault behaviour.
        """
        seg = self._last
        if seg is not None and seg.start <= addr:
            if width == 8:
                if addr + 8 <= seg.end:
                    U64.pack_into(seg.data, addr - seg.start,
                                  value & 0xFFFFFFFFFFFFFFFF)
                    return
            elif width == 4:
                if addr + 4 <= seg.end:
                    U32.pack_into(seg.data, addr - seg.start,
                                  value & 0xFFFFFFFF)
                    return
        value &= (1 << (width * 8)) - 1
        self.write(addr, value.to_bytes(width, "little"))

    def read_cstr(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (bounded by ``limit``).

        Scans whole segments at a time instead of issuing one ``read()``
        per byte.  Fault behaviour at segment boundaries matches the
        bytewise loop exactly: running off the end of a segment faults
        at the first unmapped byte, unless an adjacent segment is
        mapped there, in which case the scan continues into it.
        """
        out = bytearray()
        while len(out) < limit:
            cursor = addr + len(out)
            seg = self._find(cursor)
            if seg is None:
                raise MemoryFault(cursor, 1, "read")
            start = cursor - seg.start
            end = min(len(seg.data), start + limit - len(out))
            nul = seg.data.find(0, start, end)
            if nul >= 0:
                out += seg.data[start:nul]
                break
            out += seg.data[start:end]
        return bytes(out)

    def write_cstr(self, addr: int, text: bytes) -> None:
        """Write ``text`` followed by a NUL byte."""
        self.write(addr, bytes(text) + b"\x00")
