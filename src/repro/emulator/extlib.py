"""External library implementations for the VX machine.

This is the environment's equivalent of glibc + libpthread + libgomp:
every function a VXE binary can import.  Calls arrive through import
stubs with up to six integer arguments in the SysV argument registers;
the return value goes to ``rax``.

The library is the boundary across which the paper's callback problem
exists: ``pthread_create``, ``omp_parallel_for`` and ``qsort`` receive
*function pointers into the binary* and later transfer control to them
— from a new thread in the first two cases.  A recompiled binary must
therefore keep those original-address entry points alive (trampolines).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from .machine import EmulationFault, Machine, ThreadContext

INPUT_BASE = 0x6000_0000

# Register indices (duplicated from machine.py for speed/clarity).
_RAX, _RDI, _RSI, _RDX, _RCX = 0, 7, 6, 2, 1

_COSTS = {
    "malloc": 30, "free": 12, "calloc": 40, "realloc": 40,
    "memcpy": 8, "memset": 8, "memcmp": 8, "memmove": 8,
    "strlen": 6, "strcmp": 8, "strncmp": 8, "strcpy": 8, "strncpy": 8,
    "strcat": 10, "strchr": 6, "atoi": 8,
    "putchar": 10, "puts": 20, "print_int": 20, "printf": 40,
    "write_out": 20,
    "exit": 5, "abort": 5,
    "rand": 6, "srand": 2,
    "qsort": 60,
    "pthread_create": 450, "pthread_join": 120, "pthread_exit": 40,
    "pthread_mutex_init": 10, "pthread_mutex_destroy": 5,
    "pthread_mutex_lock": 18, "pthread_mutex_unlock": 14,
    "pthread_barrier_init": 10, "pthread_barrier_wait": 60,
    "omp_parallel_for": 900, "omp_get_max_threads": 4,
    "evt_wait": 30, "evt_signal": 20,
    "input_size": 4, "input_data": 4, "getparam": 4,
    "thread_cycles": 2, "wall_cycles": 2,
    "fs_stat": 40, "fs_opendir": 50, "fs_readdir": 30, "fs_closedir": 10,
    "fs_open": 50, "fs_read": 25, "fs_size": 10, "fs_close": 10,
    "net_accept": 60, "net_recv": 50, "net_send": 50, "net_close": 20,
    "net_wait_data": 40,
}

_DEFAULT_COST = 20

_COSTS.update({
    "__poly_enter": 14,
    "__poly_cf_miss": 10,
    "__poly_record_access": 30,
    "__poly_record_entry": 20,
})


class ControlFlowMiss(EmulationFault):
    """Raised by the Polynima runtime when the recompiled binary hits a
    control transfer target unknown to the recovered CFG (§3.2).

    The additive-lifting driver catches this, records (site, target) in
    the on-disk CFG and re-runs the recompilation pipeline.
    """

    def __init__(self, site: int, target: int, thread_id: int) -> None:
        super().__init__(
            f"control-flow miss at site {site:#x} -> {target:#x}",
            site, thread_id)
        self.site = site
        self.target = target


class _Mutex:
    __slots__ = ("owner", "waiters")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.waiters = 0


class _Barrier:
    __slots__ = ("count", "arrived", "generation")

    def __init__(self, count: int) -> None:
        self.count = count
        self.arrived = 0
        self.generation = 0


class ExternalLibrary:
    """Host implementation of every importable function.

    Additional functions can be registered (``register``), which the
    server workloads use to model their environment.  Subclasses used by
    baseline recompilers may override behaviour, e.g. to model thread
    creation entering lifted code without TLS initialisation.
    """

    def __init__(self, input_blob: bytes = b"",
                 params: Tuple[int, ...] = (),
                 fs: Optional[Dict[str, bytes]] = None,
                 net_script: Optional[List[List[Tuple]]] = None,
                 omp_threads: int = 4) -> None:
        self.input_blob = bytes(input_blob)
        self.params = tuple(params)
        self.fs = dict(fs or {})
        self.net_script = [list(conn) for conn in (net_script or [])]
        self.net_sent: List[bytearray] = [bytearray() for _ in self.net_script]
        self.omp_threads = omp_threads
        self.machine: Optional[Machine] = None
        self._extra_cost = 0
        self._handlers: Dict[str, Callable] = {}
        self._mutexes: Dict[int, _Mutex] = {}
        self._barriers: Dict[int, _Barrier] = {}
        self._omp_regions: Dict[int, Dict] = {}
        self._next_region = 1
        self._rng = random.Random(1234)
        self._heap_next = 0
        self._heap_end = 0
        self._free_lists: Dict[int, List[int]] = {}
        self._dir_handles: Dict[int, List[bytes]] = {}
        self._file_handles: Dict[int, Tuple[bytes, int]] = {}
        self._next_handle = 1
        self._net_accept_idx = 0
        self._net_pos: List[int] = [0] * len(self.net_script)
        # Polynima runtime state ("libpolyrt"): per-thread emulated
        # stack ranges + dynamic-analysis record buffers.
        self.poly_emustacks: Dict[int, Tuple[int, int]] = {}
        self._signaled_events: set = set()
        self.poly_access_log: Dict[str, set] = {}
        self.poly_entry_log: set = set()
        for name in dir(self):
            if name.startswith("do_"):
                self._handlers[name[3:]] = getattr(self, name)

    # -- plumbing ------------------------------------------------------------

    def attach(self, machine: Machine) -> None:
        """Bind this library instance to a machine before execution."""
        self.machine = machine
        from .machine import HEAP_BASE, HEAP_SIZE
        self._heap_next = HEAP_BASE + 16
        self._heap_end = HEAP_BASE + HEAP_SIZE
        if self.input_blob:
            size = max(len(self.input_blob), 16)
            machine.memory.map(INPUT_BASE, size + 16, "input")
            machine.memory.write(INPUT_BASE, self.input_blob)
        machine.thread_done_hooks.append(self._on_thread_done)

    def register(self, name: str, handler: Callable, cost: int = 20) -> None:
        """Install a workload-specific external function."""
        self._handlers[name] = handler
        _COSTS.setdefault(name, cost)

    def dispatch(self, name: str, machine: Machine, thread: ThreadContext,
                 args: Tuple[int, ...]):
        """Route an import-stub call to its ``do_<name>`` handler."""
        self._extra_cost = 0
        handler = self._handlers.get(name)
        if handler is None:
            raise EmulationFault(f"unresolved import {name!r}",
                                 thread.cpu.pc, thread.tid)
        return handler(machine, thread, args)

    def cost(self, name: str) -> int:
        """Cycle cost charged for one call to the named function."""
        extra, self._extra_cost = self._extra_cost, 0
        return _COSTS.get(name, _DEFAULT_COST) + extra

    # -- heap -----------------------------------------------------------------

    def _alloc(self, size: int) -> int:
        size = max((size + 15) & ~15, 16)
        bucket = self._free_lists.get(size)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._heap_next + 16
            self._heap_next = addr + size
            if self._heap_next > self._heap_end:
                raise EmulationFault("out of heap memory")
            self.machine.memory.write_int(addr - 16, size, 8)
        sanitizer = self.machine.sanitizer
        if sanitizer is not None:
            # A fresh allocation is ordered by the allocator: recycled
            # shadow state must not produce false races.
            sanitizer.on_malloc(addr, size)
        return addr

    def do_malloc(self, machine, thread, args):
        """``void *malloc(size_t n)`` over the bump/free-list heap."""
        return self._alloc(args[0])

    def do_calloc(self, machine, thread, args):
        """``void *calloc(size_t n, size_t size)`` — zeroed allocation."""
        size = args[0] * args[1]
        addr = self._alloc(size)
        machine.memory.write(addr, b"\x00" * size)
        self._extra_cost = size // 16
        return addr

    def do_free(self, machine, thread, args):
        """``void free(void *p)``."""
        addr = args[0]
        if addr == 0:
            return 0
        size = machine.memory.read_int(addr - 16, 8)
        self._free_lists.setdefault(size, []).append(addr)
        return 0

    def do_realloc(self, machine, thread, args):
        """``void *realloc(void *p, size_t n)`` — copy-and-free model."""
        addr, new_size = args[0], args[1]
        new = self._alloc(new_size)
        if addr:
            old_size = machine.memory.read_int(addr - 16, 8)
            payload = machine.memory.read(addr, min(old_size, new_size))
            machine.memory.write(new, payload)
            self.do_free(machine, thread, (addr,))
        return new

    # -- memory/string utilities ------------------------------------------------

    def do_memcpy(self, machine, thread, args):
        """``void *memcpy(void *dst, const void *src, size_t n)``."""
        dst, src, n = args[0], args[1], args[2]
        machine.memory.write(dst, machine.memory.read(src, n))
        self._extra_cost = n // 8
        return dst

    do_memmove = do_memcpy

    def do_memset(self, machine, thread, args):
        """``void *memset(void *dst, int c, size_t n)``."""
        dst, value, n = args[0], args[1] & 0xFF, args[2]
        machine.memory.write(dst, bytes([value]) * n)
        self._extra_cost = n // 8
        return dst

    def do_memcmp(self, machine, thread, args):
        """``int memcmp(const void *a, const void *b, size_t n)``."""
        a = machine.memory.read(args[0], args[2])
        b = machine.memory.read(args[1], args[2])
        self._extra_cost = args[2] // 8
        return 0 if a == b else (1 if a > b else -1)

    def do_strlen(self, machine, thread, args):
        """``size_t strlen(const char *s)``."""
        text = machine.memory.read_cstr(args[0])
        self._extra_cost = len(text) // 4
        return len(text)

    def do_strcmp(self, machine, thread, args):
        """``int strcmp(const char *a, const char *b)``."""
        a = machine.memory.read_cstr(args[0])
        b = machine.memory.read_cstr(args[1])
        return 0 if a == b else (1 if a > b else -1)

    def do_strncmp(self, machine, thread, args):
        """``int strncmp(const char *a, const char *b, size_t n)``."""
        a = machine.memory.read_cstr(args[0])[:args[2]]
        b = machine.memory.read_cstr(args[1])[:args[2]]
        return 0 if a == b else (1 if a > b else -1)

    def do_strcpy(self, machine, thread, args):
        """``char *strcpy(char *dst, const char *src)``."""
        text = machine.memory.read_cstr(args[1])
        machine.memory.write_cstr(args[0], text)
        self._extra_cost = len(text) // 4
        return args[0]

    def do_strncpy(self, machine, thread, args):
        """``char *strncpy(char *dst, const char *src, size_t n)``."""
        text = machine.memory.read_cstr(args[1])[:args[2]]
        machine.memory.write(args[0], text.ljust(args[2], b"\x00"))
        return args[0]

    def do_strcat(self, machine, thread, args):
        """``char *strcat(char *dst, const char *src)``."""
        dst = machine.memory.read_cstr(args[0])
        src = machine.memory.read_cstr(args[1])
        machine.memory.write_cstr(args[0], dst + src)
        return args[0]

    def do_strchr(self, machine, thread, args):
        """``char *strchr(const char *s, int c)``."""
        text = machine.memory.read_cstr(args[0])
        idx = text.find(bytes([args[1] & 0xFF]))
        return 0 if idx < 0 else args[0] + idx

    def do_atoi(self, machine, thread, args):
        """``int atoi(const char *s)``."""
        text = machine.memory.read_cstr(args[0]).decode("ascii", "replace")
        text = text.strip()
        sign = 1
        if text[:1] in ("+", "-"):
            sign = -1 if text[0] == "-" else 1
            text = text[1:]
        digits = ""
        for ch in text:
            if not ch.isdigit():
                break
            digits += ch
        return sign * int(digits) if digits else 0

    # -- output ------------------------------------------------------------------

    def do_putchar(self, machine, thread, args):
        """``int putchar(int c)`` onto the captured stdout."""
        machine.stdout.append(args[0] & 0xFF)
        return args[0] & 0xFF

    def do_puts(self, machine, thread, args):
        """``int puts(const char *s)`` onto the captured stdout."""
        machine.stdout += machine.memory.read_cstr(args[0]) + b"\n"
        return 0

    def do_print_int(self, machine, thread, args):
        """Test helper: print one integer and a newline."""
        value = args[0]
        if value >= 1 << 63:
            value -= 1 << 64
        machine.stdout += str(value).encode()
        return 0

    def do_write_out(self, machine, thread, args):
        """Test helper: write a raw buffer to the captured stdout."""
        machine.stdout += machine.memory.read(args[0], args[1])
        return args[1]

    def do_printf(self, machine, thread, args):
        """``int printf(const char *fmt, ...)`` — %d/%s/%c/%x/%ld subset."""
        fmt = machine.memory.read_cstr(args[0]).decode("latin1")
        out = []
        argi = 1
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != "%":
                out.append(ch)
                i += 1
                continue
            spec = fmt[i + 1] if i + 1 < len(fmt) else "%"
            i += 2
            if spec == "%":
                out.append("%")
                continue
            value = args[argi] if argi < len(args) else 0
            argi += 1
            if spec == "d":
                if value >= 1 << 63:
                    value -= 1 << 64
                out.append(str(value))
            elif spec == "u":
                out.append(str(value))
            elif spec == "x":
                out.append(format(value, "x"))
            elif spec == "c":
                out.append(chr(value & 0xFF))
            elif spec == "s":
                out.append(machine.memory.read_cstr(value).decode("latin1"))
            else:
                out.append("%" + spec)
        machine.stdout += "".join(out).encode("latin1")
        return 0

    # -- process ------------------------------------------------------------------

    def do_exit(self, machine, thread, args):
        """``void exit(int status)`` — ends the whole machine."""
        machine.exited = True
        machine.exit_code = args[0] & 0xFF
        return None

    def do_abort(self, machine, thread, args):
        """``void abort(void)`` — raises an emulation fault."""
        raise EmulationFault("abort() called", thread.cpu.pc, thread.tid)

    def do_rand(self, machine, thread, args):
        """``int rand(void)`` from the library's seeded LCG."""
        return self._rng.randrange(1 << 31)

    def do_srand(self, machine, thread, args):
        """``void srand(unsigned seed)``."""
        self._rng = random.Random(args[0])
        return 0

    # -- harness-provided inputs ------------------------------------------------

    def do_input_size(self, machine, thread, args):
        """Workload input: byte length of the preloaded input buffer."""
        return len(self.input_blob)

    def do_input_data(self, machine, thread, args):
        """Workload input: copy the preloaded input into guest memory."""
        return INPUT_BASE

    def do_getparam(self, machine, thread, args):
        """Workload input: read one integer parameter by index."""
        idx = args[0]
        return self.params[idx] if idx < len(self.params) else 0

    def do_thread_cycles(self, machine, thread, args):
        """Cycles consumed by the calling thread (for harness timing)."""
        return thread.cycles

    def do_wall_cycles(self, machine, thread, args):
        """Simulated wall cycles so far (for harness timing)."""
        return int(machine.wall_cycles)

    # -- qsort (callback into guest code) -----------------------------------------

    def do_qsort(self, machine, thread, args):
        """``qsort`` with the comparator invoked as a guest callback."""
        base, nmemb, size, cmp_fn = args[0], args[1], args[2], args[3]
        memory = machine.memory
        items = [memory.read(base + i * size, size) for i in range(nmemb)]
        a_addr = self._alloc(size)
        b_addr = self._alloc(size)

        def compare(a: bytes, b: bytes) -> int:
            memory.write(a_addr, a)
            memory.write(b_addr, b)
            verdict = machine.call_guest(thread, cmp_fn, (a_addr, b_addr))
            return verdict - (1 << 64) if verdict >= 1 << 63 else verdict

        # Insertion sort: deterministic comparator call sequence.
        for i in range(1, len(items)):
            j = i
            while j > 0 and compare(items[j - 1], items[j]) > 0:
                items[j - 1], items[j] = items[j], items[j - 1]
                j -= 1
        self.do_free(machine, thread, (a_addr,))
        self.do_free(machine, thread, (b_addr,))
        for i, item in enumerate(items):
            memory.write(base + i * size, item)
        self._extra_cost = nmemb * 12
        return 0

    # -- pthreads -------------------------------------------------------------------

    def spawn_guest_thread(self, machine: Machine, entry: int,
                           args: Tuple[int, ...]) -> ThreadContext:
        """Create a guest thread.  Split out so baseline libraries can
        model defective thread entry (e.g. BinRec's missing TLS init)."""
        return machine.spawn_thread(entry, args)

    def do_pthread_create(self, machine, thread, args):
        """``pthread_create`` — spawns a green thread at the start routine."""
        tid_ptr, _attr, start_routine, arg = args[0], args[1], args[2], args[3]
        new = self.spawn_guest_thread(machine, start_routine, (arg,))
        if tid_ptr:
            machine.memory.write_int(tid_ptr, new.tid, 8)
        if machine.sanitizer is not None:
            machine.sanitizer.on_thread_create(thread, new.tid)
        return 0

    def do_pthread_join(self, machine, thread, args):
        """``pthread_join`` — blocks until the target thread exits."""
        tid, ret_ptr = args[0], args[1]
        if tid >= len(machine.threads):
            return -1
        target = machine.threads[tid]
        if target.state != ThreadContext.DONE:
            # pc is still at the import stub, so the call re-runs after
            # wake-up and then observes the completed thread.
            machine.block(thread, ("join", tid))
            return None
        if ret_ptr:
            machine.memory.write_int(ret_ptr, target.exit_value, 8)
        if machine.sanitizer is not None:
            machine.sanitizer.on_thread_join(thread, tid)
        return 0

    def do_pthread_exit(self, machine, thread, args):
        """``pthread_exit`` — ends the calling thread with a value."""
        thread.cpu.set(_RAX, args[0])
        machine._thread_returned(
            thread,
            0xDEAD0000 if thread.tid == 0 else 0xDEAD1000)
        return None

    def _mutex(self, addr: int) -> _Mutex:
        mutex = self._mutexes.get(addr)
        if mutex is None:
            mutex = self._mutexes[addr] = _Mutex()
        return mutex

    def do_pthread_mutex_init(self, machine, thread, args):
        """``pthread_mutex_init`` (word-sized mutex in guest memory)."""
        self._mutexes[args[0]] = _Mutex()
        return 0

    def do_pthread_mutex_destroy(self, machine, thread, args):
        """``pthread_mutex_destroy``."""
        self._mutexes.pop(args[0], None)
        return 0

    def do_pthread_mutex_lock(self, machine, thread, args):
        """``pthread_mutex_lock`` — blocks the thread when contended."""
        mutex = self._mutex(args[0])
        if mutex.owner is None:
            mutex.owner = thread.tid
            # Contended lockers re-run the stub after wake-up and pass
            # through here too, so this is the single acquire point.
            if machine.sanitizer is not None:
                machine.sanitizer.on_mutex_acquire(thread, args[0])
            return 0
        if mutex.owner == thread.tid:
            raise EmulationFault("recursive mutex lock",
                                 thread.cpu.pc, thread.tid)
        mutex.waiters += 1
        machine.block(thread, ("mutex", args[0]))
        return None     # call retried on wake-up (pc still at stub)

    def do_pthread_mutex_unlock(self, machine, thread, args):
        """``pthread_mutex_unlock`` — wakes one blocked waiter."""
        mutex = self._mutex(args[0])
        if machine.sanitizer is not None:
            machine.sanitizer.on_mutex_release(thread, args[0])
        mutex.owner = None
        if mutex.waiters:
            mutex.waiters -= machine.wake(("mutex", args[0]), limit=1)
        return 0

    def do_pthread_barrier_init(self, machine, thread, args):
        """``pthread_barrier_init`` with the party count."""
        self._barriers[args[0]] = _Barrier(args[2])
        return 0

    def do_pthread_barrier_wait(self, machine, thread, args):
        """``pthread_barrier_wait`` — releases all once the count arrives."""
        barrier = self._barriers.get(args[0])
        if barrier is None:
            raise EmulationFault("wait on uninitialised barrier",
                                 thread.cpu.pc, thread.tid)
        barrier.arrived += 1
        if barrier.arrived >= barrier.count:
            barrier.arrived = 0
            barrier.generation += 1
            key = ("barrier", args[0], barrier.generation - 1)
            if machine.sanitizer is not None:
                # Blocked parties resume after their (already completed)
                # call, so the all-to-all edge is created here.
                tids = [t.tid for t in machine.threads
                        if t.state == ThreadContext.BLOCKED
                        and t.block_key == key]
                machine.sanitizer.on_barrier(tids + [thread.tid])
            machine.wake(key)
            return 1
        machine.block(thread, ("barrier", args[0], barrier.generation))
        # Blocked threads resume *after* the call: mark completion by
        # advancing past the stub once woken; handled by returning a
        # sentinel that re-runs the call, which then observes a new
        # generation.  Simpler: complete the call now with return 0.
        sp = thread.cpu.get(4)
        ret = machine.memory.read_int(sp, 8)
        thread.cpu.set(4, sp + 8)
        thread.cpu.pc = ret
        thread.cpu.set(_RAX, 0)
        return None

    # -- OpenMP ---------------------------------------------------------------------

    def do_omp_get_max_threads(self, machine, thread, args):
        """``omp_get_max_threads`` — the machine's core count."""
        return self.omp_threads

    def do_omp_parallel_for(self, machine, thread, args):
        """Fork/join parallel loop: fn(arg, lo, hi) per worker chunk.

        Compiled OpenMP pragmas outline the loop body into a separate
        function and hand its address to the runtime — each worker entry
        is a callback into the binary from a fresh thread context.
        """
        fn, arg, start, end = args[0], args[1], args[2], args[3]
        nthreads = min(self.omp_threads, max(1, end - start))
        total = end - start
        region_id = self._next_region
        self._next_region += 1
        tids = []
        for i in range(nthreads):
            lo = start + (total * i) // nthreads
            hi = start + (total * (i + 1)) // nthreads
            worker = self.spawn_guest_thread(machine, fn, (arg, lo, hi))
            tids.append(worker.tid)
        if machine.sanitizer is not None:
            for tid in tids:
                machine.sanitizer.on_thread_create(thread, tid)
        self._omp_regions[region_id] = {"remaining": set(tids),
                                        "tids": tids,
                                        "waiter": thread.tid}
        machine.block(thread, ("omp", region_id))
        # Complete the call immediately so the waiter resumes after it.
        sp = thread.cpu.get(4)
        ret = machine.memory.read_int(sp, 8)
        thread.cpu.set(4, sp + 8)
        thread.cpu.pc = ret
        thread.cpu.set(_RAX, 0)
        return None

    def _on_thread_done(self, machine, thread) -> None:
        for region_id, region in list(self._omp_regions.items()):
            region["remaining"].discard(thread.tid)
            if not region["remaining"]:
                if machine.sanitizer is not None:
                    # Exit clocks exist already: the sanitizer's own
                    # thread-done hook runs before this one.
                    machine.sanitizer.on_omp_join(region["waiter"],
                                                  region["tids"])
                machine.wake(("omp", region_id))
                del self._omp_regions[region_id]

    # -- events (used by server workloads) -----------------------------------------

    def do_evt_wait(self, machine, thread, args):
        """Event-object wait with a latched-signal fast path."""
        if args[0] in self._signaled_events:
            if machine.sanitizer is not None:
                machine.sanitizer.on_event_wait(thread, args[0])
            return 0        # latched: signal happened before the wait
        machine.block(thread, ("event", args[0]))
        sp = thread.cpu.get(4)
        ret = machine.memory.read_int(sp, 8)
        thread.cpu.set(4, sp + 8)
        thread.cpu.pc = ret
        thread.cpu.set(_RAX, 0)
        return None

    def do_evt_signal(self, machine, thread, args):
        """Event-object signal; latches if no thread is waiting yet."""
        self._signaled_events.add(args[0])
        if machine.sanitizer is not None:
            # Waiters blocked now resume after their completed call, so
            # the release edge is pushed into them directly.
            key = ("event", args[0])
            waiting = [t.tid for t in machine.threads
                       if t.state == ThreadContext.BLOCKED
                       and t.block_key == key]
            machine.sanitizer.on_event_signal(thread, args[0], waiting)
        machine.wake(("event", args[0]))
        return 0

    # -- in-memory filesystem --------------------------------------------------------

    def do_fs_stat(self, machine, thread, args):
        """Filesystem model: existence/type/size of a path."""
        path = machine.memory.read_cstr(args[0]).decode("latin1")
        if path in self.fs:
            return 0
        prefix = path.rstrip("/") + "/"
        if any(name.startswith(prefix) for name in self.fs):
            return 0
        if path.rstrip("/") == "" and self.fs:
            return 0
        return -1

    def do_fs_opendir(self, machine, thread, args):
        """Filesystem model: open a directory iterator."""
        path = machine.memory.read_cstr(args[0]).decode("latin1")
        prefix = path.rstrip("/") + "/" if path.rstrip("/") else ""
        entries = sorted({name[len(prefix):].split("/")[0]
                          for name in self.fs if name.startswith(prefix)})
        if not entries:
            return 0
        handle = self._next_handle
        self._next_handle += 1
        self._dir_handles[handle] = [e.encode("latin1") for e in entries]
        return handle

    def do_fs_readdir(self, machine, thread, args):
        """Filesystem model: next entry name, empty at end."""
        handle, buf = args[0], args[1]
        entries = self._dir_handles.get(handle)
        if not entries:
            return 0
        machine.memory.write_cstr(buf, entries.pop(0))
        return 1

    def do_fs_closedir(self, machine, thread, args):
        """Filesystem model: release a directory iterator."""
        self._dir_handles.pop(args[0], None)
        return 0

    def do_fs_open(self, machine, thread, args):
        """Filesystem model: open a file for reading."""
        path = machine.memory.read_cstr(args[0]).decode("latin1")
        if path not in self.fs:
            return -1
        handle = self._next_handle
        self._next_handle += 1
        self._file_handles[handle] = (self.fs[path], 0)
        return handle

    def do_fs_size(self, machine, thread, args):
        """Filesystem model: size of an open file."""
        entry = self._file_handles.get(args[0])
        return len(entry[0]) if entry else -1

    def do_fs_read(self, machine, thread, args):
        """Filesystem model: read from an open file at its cursor."""
        handle, buf, cap = args[0], args[1], args[2]
        entry = self._file_handles.get(handle)
        if entry is None:
            return -1
        data, pos = entry
        chunk = data[pos:pos + cap]
        machine.memory.write(buf, chunk)
        self._file_handles[handle] = (data, pos + len(chunk))
        return len(chunk)

    def do_fs_close(self, machine, thread, args):
        """Filesystem model: close an open file."""
        self._file_handles.pop(args[0], None)
        return 0

    # -- Polynima runtime ("libpolyrt", linked into recompiled output) -----------------

    def do___poly_enter(self, machine, thread, args):
        """External-entry hook of recompiled binaries (§3.3.2, §3.3.3).

        On first entry in a thread context: allocate the thread's TLS
        block (virtual CPU state) and a fresh emulated stack, point the
        virtual rsp at its (16-byte aligned) top, and remember the
        stack range so the access recorder can classify addresses.
        Subsequent entries (callbacks on a live thread) reuse the
        existing state.  Returns the TLS base.
        """
        if thread.cpu.tls_base:
            return thread.cpu.tls_base
        meta = machine.image.metadata
        tls_size = int(meta.get("poly_tls_size", "512"))
        stack_size = int(meta.get("poly_emustack_size", "65536"))
        rsp_offset = int(meta.get("poly_rsp_offset", "32"))
        tls = self._alloc(tls_size)
        machine.memory.write(tls, b"\x00" * tls_size)
        stack = self._alloc(stack_size + 16)
        top = (stack + stack_size) & ~0xF
        machine.memory.write_int(tls + rsp_offset, top, 8)
        thread.cpu.tls_base = tls
        self.poly_emustacks[thread.tid] = (stack, top)
        return tls

    def do___mcsema_enter(self, machine, thread, args):
        """McSema-style state entry: the emulated stack and register
        state are a *single global block* shared by every thread (the
        "global array of bytes" model of §2.2.1) — unsynchronised and
        racy once a second thread enters lifted code."""
        shared = getattr(self, "_mcsema_state", None)
        if shared is None:
            meta = machine.image.metadata
            tls_size = int(meta.get("poly_tls_size", "512"))
            stack_size = int(meta.get("poly_emustack_size", "65536"))
            rsp_offset = int(meta.get("poly_rsp_offset", "32"))
            tls = self._alloc(tls_size)
            machine.memory.write(tls, b"\x00" * tls_size)
            stack = self._alloc(stack_size + 16)
            top = (stack + stack_size) & ~0xF
            machine.memory.write_int(tls + rsp_offset, top, 8)
            self._mcsema_state = tls
            shared = tls
        thread.cpu.tls_base = shared
        return shared

    def do___binrec_enter(self, machine, thread, args):
        """BinRec-style entry: the virtual state is initialised for the
        main thread only; a callback executing in a new thread finds no
        state and faults (§2.2.3)."""
        if thread.tid == 0:
            return self.do___poly_enter(machine, thread, args)
        # New thread context: state never initialised (tls_base 0); the
        # first virtual-state access faults at a near-null address.
        return thread.cpu.tls_base

    def do___poly_cf_miss(self, machine, thread, args):
        """Recompiled-binary runtime: report a control-flow miss (raises)."""
        site, target = args[0], args[1]
        raise ControlFlowMiss(site, target, thread.tid)

    def do___poly_record_access(self, machine, thread, args):
        """Instrumentation: record one load/store site's per-thread range."""
        encoded_site, addr = args[0], args[1]
        site = f"{encoded_site >> 16:x}:{encoded_site & 0xFFFF}"
        rng = self.poly_emustacks.get(thread.tid)
        kind = "local" if rng and rng[0] <= addr < rng[1] else "shared"
        record = self.poly_access_log.get(site)
        if record is None:
            record = self.poly_access_log[site] = {
                "kinds": set(), "ranges": {}, "count": 0}
        record["kinds"].add(kind)
        lo, hi = record["ranges"].get(thread.tid, (addr, addr))
        record["ranges"][thread.tid] = (min(lo, addr), max(hi, addr))
        record["count"] += 1
        return 0

    def do___poly_record_entry(self, machine, thread, args):
        """Callback analysis: record an external-visible entry invocation."""
        self.poly_entry_log.add(args[0])
        return 0

    # -- scripted network -------------------------------------------------------------

    def do_net_accept(self, machine, thread, args):
        """Network model: accept the next scripted client connection."""
        if self._net_accept_idx >= len(self.net_script):
            return -1
        conn = self._net_accept_idx
        self._net_accept_idx += 1
        return conn

    def do_net_recv(self, machine, thread, args):
        """Network model: read from a scripted client, blocking semantics."""
        conn, buf, cap = args[0], args[1], args[2]
        if conn >= len(self.net_script):
            return -1
        script = self.net_script[conn]
        while self._net_pos[conn] < len(script):
            item = script[self._net_pos[conn]]
            self._net_pos[conn] += 1
            if item[0] == "msg":
                payload = item[1][:cap]
                machine.memory.write(buf, payload)
                return len(payload)
            if item[0] == "data_connect":
                machine.wake(("data", conn))
                continue
            raise EmulationFault(f"bad net script item {item!r}")
        return 0

    def do_net_send(self, machine, thread, args):
        """Network model: append to the client's captured response stream."""
        conn, buf, n = args[0], args[1], args[2]
        if conn < len(self.net_sent):
            self.net_sent[conn] += machine.memory.read(buf, n)
        return n

    def do_net_close(self, machine, thread, args):
        """Network model: close a client connection."""
        return 0

    def do_net_wait_data(self, machine, thread, args):
        """Network model: block until a client has data pending."""
        conn = args[0]
        if conn >= len(self.net_script):
            return -1
        # If the data-connect event was already consumed, don't block.
        script = self.net_script[conn]
        already = any(item[0] == "data_connect"
                      for item in script[:self._net_pos[conn]])
        if already:
            return 0
        machine.block(thread, ("data", conn))
        sp = thread.cpu.get(4)
        ret = machine.memory.read_int(sp, 8)
        thread.cpu.set(4, sp + 8)
        thread.cpu.pc = ret
        thread.cpu.set(_RAX, 0)
        return None
