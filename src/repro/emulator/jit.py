"""Tier-3 trace JIT: hot superblocks compiled to Python code objects.

The two-tier engine (repro.emulator.engine) retires one pre-planned
Python closure per guest instruction.  This module adds the third
tier: once a branch target's execution count crosses a hotness
threshold, the straight-line region starting there — following direct
jumps, direct calls (with a guarded static return stack) and ending at
a loop-closing branch back to the head — is stitched into generated
Python source, ``compile()``d once, and installed as a single-call
executor for the whole region.  Operand decode, width masking, flag
updates, cost accounting and counter increments are folded into
locals-only straight-line code; per-guest-instruction work drops to a
few Python bytecodes.

Determinism is the same hard invariant the fast engine carries, bit
for bit against the reference interpreter:

* traces contain no scheduling points, so the RNG sequence and the
  preemption boundaries are untouched — the trace is entered only when
  the remaining quantum budget covers a whole pass (``min_budget``)
  and the cycle budget covers its full cost (``cost_cap``); otherwise
  the dispatcher *deopts* to the tier-2 chain, which reproduces the
  exact per-instruction preemption and ``CycleLimitExceeded`` points;
* ``wall_cycles`` is accumulated with the identical sequence of float
  additions: one ``wall += cost / denom`` per retired instruction, in
  retirement order, with the precomputed per-cost quotients — float
  addition is non-associative, so per-exit folding of the wall clock
  would diverge;
* guest faults restore exact machine state via the ``k`` marker: the
  generated code stores the index of the instruction about to execute
  before every faultable operation, and the ``except BaseException``
  recovery block rebuilds counters from prefix tables and re-raises,
  so a fault surfaces with the same post-advance PC, cycle counts and
  flags as the interpreters;
* ``jit.*`` statistics live in :meth:`TraceJit.stats`, *not* in
  ``Machine.perf_counters()`` — engine snapshots are asserted
  bit-identical across reference/fast/jit and only one engine has
  traces.

Deopt rules (the trace tier is bypassed, not approximated): machines
with register-traffic profiling run tier-2 wholesale (generated code
indexes ``cpu.regs`` directly and would skip the counting accessors);
per-step hooks and sanitizers take the hook-preserving single-step
path exactly as in ``run_fast``; indirect-transfer hooks disable trace
dispatch for the quantum; ``invalidate_decode_cache()`` drops compiled
traces and hotness counters together with decodes and plans, so
patched code re-specializes instead of executing stale traces.

Per-mnemonic semantics are emitted from the ISA spec's ``sem`` tags
(``isa/spec.py``) — the emitter registry is derived by ``getattr``
over :data:`SPEC`, and the flag/condition source comes from
``flags_update_source`` / ``cond_source``, so the generated code and
the interpreters share one definition of every architectural effect.

Compiled traces are machine-independent (they close over nothing but
code-derived constants) and are published in a per-image shared cache
(``image._jit_shared_traces``), so repeated runs of a cached workload
image — the benchmark's warm repeats, batch recompiles — reuse the
compiled code objects instead of paying compilation again.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..binfmt import IMPORT_STUB_BASE
from ..isa.instructions import Imm, Mem
from ..isa.registers import Reg
from ..isa.spec import SPEC, cond_source, flags_update_source
from .cpu import U64
from .engine import _run_chain, run_fast
from .machine import (CycleLimitExceeded, EmulationFault, EXIT_ADDR,
                      THREAD_EXIT_ADDR, ThreadContext)
from .memory import MemoryFault

__all__ = ["run_jit", "TraceJit", "Trace"]

#: Default superblock-entry count that triggers trace compilation.
DEFAULT_THRESHOLD = 16

#: Retired guest instructions per trace, at most.
MAX_TRACE_INSTRS = 64

#: Traces shorter than this are not worth the dispatch overhead.
MIN_TRACE_INSTRS = 4

_U128 = (1 << 128) - 1
_LANE = 0xFFFFFFFF


class Trace:
    """One compiled trace: the executor plus its dispatch guards."""

    __slots__ = ("fn", "head", "n_instrs", "min_budget", "cost_cap",
                 "is_loop", "source")

    def __init__(self, fn, head: int, n_instrs: int, min_budget: int,
                 cost_cap: int, is_loop: bool, source: str) -> None:
        self.fn = fn
        self.head = head
        self.n_instrs = n_instrs
        self.min_budget = min_budget
        self.cost_cap = cost_cap
        self.is_loop = is_loop
        self.source = source


# --- trace discovery ---------------------------------------------------------

class _Step:
    """One retired guest instruction inside a trace."""

    __slots__ = ("kind", "pc", "next_pc", "instr", "cost", "klass",
                 "atomic", "target", "cond_expr", "expected")

    def __init__(self, kind: str, pc: int, next_pc: int, instr, cost: int,
                 klass: str, atomic: bool, target: Optional[int] = None,
                 cond_expr=None, expected: Optional[int] = None) -> None:
        self.kind = kind          # straight|jmp|jcc_exit|call|ret|loop
        self.pc = pc
        self.next_pc = next_pc    # post-advance pc (pc + size)
        self.instr = instr
        self.cost = cost
        self.klass = klass
        self.atomic = atomic
        self.target = target      # jmp/call target, jcc taken target
        self.cond_expr = cond_expr
        self.expected = expected  # guarded ret: static return address


def _build_steps(machine, head: int):
    """Walk the region at ``head`` into a step list.

    Follows direct jumps (retired as counter-only ghosts), direct
    calls below the import-stub window (tracking a static return
    stack) and guarded returns; ends at a loop-closing direct branch
    back to ``head`` (with the static call depth at zero), or at the
    first untraceable instruction — indirect control flow, external
    calls, terminators, ``rdtls``, or the length cap.

    Returns ``(steps, end_pc, loop_cond)`` where ``loop_cond`` is the
    closing jCC's condition expression, ``True`` for an unconditional
    closing jump, or ``None`` for a straight trace ending at
    ``end_pc``.
    """
    steps: List[_Step] = []
    pc = head
    call_stack: List[int] = []
    seen = {head}
    while len(steps) < MAX_TRACE_INSTRS:
        if pc >= IMPORT_STUB_BASE or pc == EXIT_ADDR \
                or pc == THREAD_EXIT_ADDR or (pc == head and steps):
            return steps, pc, None
        plan = machine._plans.get(pc)
        if plan is None:
            plan = machine._plan_at(pc)
        _handler, instr, size, cost, klass, atomic = plan
        spec = SPEC[instr.mnemonic]
        np = pc + size
        if spec.branch_kind == "jmp":
            op = instr.operands[0]
            if not isinstance(op, Imm):
                return steps, pc, None
            tgt = op.value & U64
            if tgt == head and not call_stack:
                steps.append(_Step("loop", pc, np, instr, cost, klass,
                                   atomic, target=tgt, cond_expr=None))
                return steps, np, True
            if tgt in seen:
                return steps, pc, None
            steps.append(_Step("jmp", pc, tgt, instr, cost, klass,
                               atomic, target=tgt))
            seen.add(tgt)
            pc = tgt
            continue
        if spec.branch_kind == "jcc":
            op = instr.operands[0]
            if not isinstance(op, Imm):
                return steps, pc, None
            tgt = op.value & U64
            if tgt == head and not call_stack:
                steps.append(_Step("loop", pc, np, instr, cost, klass,
                                   atomic, target=tgt,
                                   cond_expr=spec.cond_expr))
                return steps, np, spec.cond_expr
            steps.append(_Step("jcc_exit", pc, np, instr, cost, klass,
                               atomic, target=tgt,
                               cond_expr=spec.cond_expr))
            seen.add(np)
            pc = np
            continue
        if spec.branch_kind == "call":
            op = instr.operands[0]
            if not isinstance(op, Imm):
                return steps, pc, None
            tgt = op.value & U64
            if tgt >= IMPORT_STUB_BASE or tgt in seen:
                return steps, pc, None
            steps.append(_Step("call", pc, np, instr, cost, klass,
                               atomic, target=tgt))
            call_stack.append(np)
            seen.add(tgt)
            pc = tgt
            continue
        if spec.terminator_kind == "ret":
            if not call_stack:
                return steps, pc, None
            expected = call_stack.pop()
            steps.append(_Step("ret", pc, np, instr, cost, klass,
                               atomic, expected=expected))
            pc = expected
            continue
        if spec.terminator_kind is not None or spec.sem is None:
            return steps, pc, None
        steps.append(_Step("straight", pc, np, instr, cost, klass,
                           atomic))
        pc = np
    return steps, pc, None


# --- code generation ---------------------------------------------------------

class _Gen:
    """Assembles the Python source of one trace executor.

    One instance per trace; emitter methods are looked up via the ISA
    spec's ``sem`` tags (``getattr(self, "_sem_" + tag)``), so no
    per-mnemonic table exists outside ``isa/spec.py``.
    """

    def __init__(self, steps: List[_Step], head: int, end_pc: int,
                 loop_cond) -> None:
        self.steps = steps
        self.head = head
        self.end_pc = end_pc
        self.loop_cond = loop_cond
        self.is_loop = loop_cond is not None
        self.n = len(steps)
        self.full_cost = sum(st.cost for st in steps)
        self.full_atomics = sum(1 for st in steps if st.atomic)
        self.costs = sorted({st.cost for st in steps})
        self.class_full: Dict[str, int] = {}
        for st in steps:
            self.class_full[st.klass] = \
                self.class_full.get(st.klass, 0) + st.cost
        self.classes = sorted(self.class_full)
        self.uses_mem = False
        self.uses_xmm = False
        self.tmp = 0

    # -- shared fragments --------------------------------------------------

    def _mask(self, width: int) -> int:
        return (1 << (width * 8)) - 1

    def _addr(self, mem: Mem) -> str:
        """Effective-address expression (Machine._mem_addr verbatim)."""
        parts = []
        if mem.disp:
            parts.append(str(mem.disp))
        if mem.base is not None:
            parts.append(f"regs[{mem.base.index}]")
        if mem.index is not None:
            if mem.scale == 1:
                parts.append(f"regs[{mem.index.index}]")
            else:
                parts.append(f"regs[{mem.index.index}] * {mem.scale}")
        if not parts:
            return str(mem.disp & U64)
        return f"({' + '.join(parts)}) & {U64}"

    def _read(self, out: List[str], op, width: int, idx: int,
              name: str) -> str:
        """Emit a read of ``op`` into a temp; returns the expression.

        Mirrors Machine._read_operand: GPRs are width-masked, Imms are
        pre-masked constants, memory goes through ``rd`` (faultable —
        the caller must have stored the ``k`` marker)."""
        if isinstance(op, Reg):
            if op.is_vector:
                self.uses_xmm = True
                return f"xmm[{op.index}]"
            if width == 8:
                return f"regs[{op.index}]"
            return f"(regs[{op.index}] & {self._mask(width)})"
        if isinstance(op, Imm):
            return str(op.value & self._mask(width))
        if isinstance(op, Mem):
            self.uses_mem = True
            out.append(f"{name} = rd({self._addr(op)}, {width})")
            return name
        raise _Untraceable(f"operand {op!r}")

    def _write(self, out: List[str], op, width: int, value: str) -> None:
        """Emit a write of an already width-masked ``value`` to ``op``.

        Mirrors Machine._write_operand: sub-64-bit register writes
        zero-extend (the value is masked by construction, so a plain
        store is the same bits cpu.set would keep)."""
        if isinstance(op, Reg):
            if op.is_vector:
                self.uses_xmm = True
                out.append(f"xmm[{op.index}] = {value}")
            else:
                out.append(f"regs[{op.index}] = {value}")
            return
        if isinstance(op, Mem):
            self.uses_mem = True
            out.append(f"wr({self._addr(op)}, {value}, {width})")
            return
        raise _Untraceable(f"destination {op!r}")

    def _flags(self, out: List[str], kind: str, a: str, b: str, res: str,
               width: int) -> None:
        live = self._live
        for line in flags_update_source(kind, a, b, res, width * 8):
            if line[:2] in live:      # lines start "zf = ", "cf = ", ...
                out.append(line)

    def _t(self, prefix: str) -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    # -- per-sem emitters (resolved via spec.sem, never by literal table) --

    def _sem_mov(self, out, instr) -> None:
        dst, src = instr.operands
        w = instr.width
        if isinstance(src, Mem):
            # Fused load: the read expression feeds the write directly
            # (same read-before-write order as the interpreter).
            self.uses_mem = True
            self._write(out, dst, w, f"rd({self._addr(src)}, {w})")
            return
        self._write(out, dst, w, self._read(out, src, w, 0, self._t("v")))

    def _sem_movsx(self, out, instr) -> None:
        dst, src = instr.operands
        w = instr.width
        v = self._t("v")
        expr = self._read(out, src, w, 0, v)
        bits = w * 8
        s = self._t("v")
        out.append(f"{s} = {expr}")
        out.append(f"{s} = ({s} - {1 << bits} if {s} >= {1 << (bits - 1)} "
                   f"else {s}) & {U64}")
        self._write(out, dst, 8, s)

    def _sem_lea(self, out, instr) -> None:
        dst, src = instr.operands
        self._write(out, dst, 8, self._addr(src))

    def _sem_push(self, out, instr) -> None:
        v = self._read(out, instr.operands[0], 8, 0, self._t("v"))
        sp = self._t("sp")
        # sp stays unmasked for the store, exactly as _op_push computes
        # it — only the register write zero-wraps (cpu.set masks).
        out.append(f"{sp} = regs[4] - 8")
        out.append(f"regs[4] = {sp} & {U64}")
        self.uses_mem = True
        out.append(f"wr({sp}, {v}, 8)")

    def _sem_pop(self, out, instr) -> None:
        sp = self._t("sp")
        v = self._t("v")
        self.uses_mem = True
        out.append(f"{sp} = regs[4]")
        out.append(f"{v} = rd({sp}, 8)")
        out.append(f"regs[4] = ({sp} + 8) & {U64}")
        self._write(out, instr.operands[0], 8, v)

    def _sem_xchg(self, out, instr) -> None:
        a, b = instr.operands
        w = instr.width
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, a, w, 0, va)
        eb = self._read(out, b, w, 0, vb)
        if ea != va:
            out.append(f"{va} = {ea}")
        if eb != vb:
            out.append(f"{vb} = {eb}")
        self._write(out, a, w, vb)
        self._write(out, b, w, va)

    def _alu_binop(self, out, instr, res_tmpl: str, flag_kind: str) -> None:
        """Shared shape of the flag-producing two-operand ALU group."""
        dst, src = instr.operands
        w = instr.width
        if not self._live:
            # Dead flags (liveness says no observation point sees this
            # update) and therefore pure register/immediate operands —
            # fuse read + compute + write into one statement.
            ea = self._read(out, dst, w, 0, self._t("v"))
            eb = self._read(out, src, w, 0, self._t("v"))
            self._write(out, dst, w, res_tmpl.format(
                a=ea, b=eb, mask=self._mask(w), bits=w * 8,
                sign=1 << (w * 8 - 1), wrap=1 << (w * 8)))
            return
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, dst, w, 0, va)
        eb = self._read(out, src, w, 0, vb)
        if ea != va:
            out.append(f"{va} = {ea}")
        if eb != vb:
            out.append(f"{vb} = {eb}")
        r = self._t("r")
        out.append(f"{r} = " + res_tmpl.format(
            a=va, b=vb, mask=self._mask(w), bits=w * 8,
            sign=1 << (w * 8 - 1), wrap=1 << (w * 8)))
        self._flags(out, flag_kind, va, vb, r, w)
        self._write(out, dst, w, r)

    def _sem_alu(self, out, instr) -> None:
        op = SPEC[instr.mnemonic].alu_op
        if op == "add":
            self._alu_binop(out, instr, "({a} + {b}) & {mask}", "add")
        elif op == "sub":
            self._alu_binop(out, instr, "({a} - {b}) & {mask}", "sub")
        elif op == "and":
            self._alu_binop(out, instr, "{a} & {b}", "logic")
        elif op == "or":
            self._alu_binop(out, instr, "{a} | {b}", "logic")
        else:
            self._alu_binop(out, instr, "{a} ^ {b}", "logic")

    def _sem_shl(self, out, instr) -> None:
        self._alu_binop(out, instr, "({a} << ({b} & 63)) & {mask}", "logic")

    def _sem_shr(self, out, instr) -> None:
        self._alu_binop(out, instr, "{a} >> ({b} & 63)", "logic")

    def _sem_sar(self, out, instr) -> None:
        self._alu_binop(
            out, instr,
            "(({a} - {wrap} if {a} >= {sign} else {a}) >> ({b} & 63))"
            " & {mask}", "logic")

    def _sem_imul(self, out, instr) -> None:
        self._alu_binop(
            out, instr,
            "(({a} - {wrap} if {a} >= {sign} else {a})"
            " * ({b} - {wrap} if {b} >= {sign} else {b})) & {mask}",
            "logic")

    def _div_common(self, out, instr, want_rem: bool) -> None:
        dst, src = instr.operands
        w = instr.width
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, dst, w, 0, va)
        eb = self._read(out, src, w, 0, vb)
        bits = w * 8
        wrap, sign = 1 << bits, 1 << (bits - 1)
        sa = self._t("d")
        sb = self._t("d")
        out.append(f"{sa} = {ea} - {wrap} if {ea} >= {sign} else {ea}")
        out.append(f"{sb} = {eb} - {wrap} if {eb} >= {sign} else {eb}")
        out.append(f"if {sb} == 0:")
        # The interpreter raises with the post-advance pc; in trace
        # code cpu.pc is stale, so the constant next_pc is baked in.
        out.append(f"    raise EmulationFault('divide by zero', "
                   f"{self._next_pc}, t.tid)")
        q = self._t("q")
        r = self._t("r")
        # int(sa / sb) is the interpreter's exact semantics (C-style
        # truncation through float division) — reproduced verbatim.
        out.append(f"{q} = int({sa} / {sb})")
        if want_rem:
            out.append(f"{r} = ({sa} - {q} * {sb}) & {self._mask(w)}")
        else:
            out.append(f"{r} = {q} & {self._mask(w)}")
        out.append("cf = False")
        out.append("of = False")
        out.append(f"zf = {r} == 0")
        out.append(f"sf = {r} >= {sign}")
        self._write(out, dst, w, r)

    def _sem_idiv(self, out, instr) -> None:
        self._div_common(out, instr, want_rem=False)

    def _sem_irem(self, out, instr) -> None:
        self._div_common(out, instr, want_rem=True)

    def _unop(self, out, instr, res_tmpl: str, flag_kind: Optional[str],
              flag_a_zero: bool = False) -> None:
        dst = instr.operands[0]
        w = instr.width
        if not self._live or flag_kind is None:
            # Dead (or absent) flags: fuse into a single statement.
            ea = self._read(out, dst, w, 0, self._t("v"))
            self._write(out, dst, w, res_tmpl.format(
                a=ea, mask=self._mask(w), sign=1 << (w * 8 - 1)))
            return
        va = self._t("v")
        ea = self._read(out, dst, w, 0, va)
        if ea != va:
            out.append(f"{va} = {ea}")
        r = self._t("r")
        out.append(f"{r} = " + res_tmpl.format(
            a=va, mask=self._mask(w), sign=1 << (w * 8 - 1)))
        if flag_a_zero:                # neg is flags_sub(0, a)
            self._flags(out, flag_kind, "0", va, r, w)
        else:
            self._flags(out, flag_kind, va, "1", r, w)
        self._write(out, dst, w, r)

    def _sem_neg(self, out, instr) -> None:
        self._unop(out, instr, "(0 - {a}) & {mask}", "sub",
                   flag_a_zero=True)

    def _sem_not(self, out, instr) -> None:
        self._unop(out, instr, "(~{a}) & {mask}", None)

    def _sem_inc(self, out, instr) -> None:
        self._unop(out, instr, "({a} + 1) & {mask}", "inc")

    def _sem_dec(self, out, instr) -> None:
        self._unop(out, instr, "({a} - 1) & {mask}", "dec")

    def _sem_cmp(self, out, instr) -> None:
        if not self._live:
            return                    # flags are its only effect
        a, b = instr.operands
        w = instr.width
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, a, w, 0, va)
        eb = self._read(out, b, w, 0, vb)
        if ea != va:
            out.append(f"{va} = {ea}")
        if eb != vb:
            out.append(f"{vb} = {eb}")
        r = self._t("r")
        out.append(f"{r} = ({va} - {vb}) & {self._mask(w)}")
        self._flags(out, "sub", va, vb, r, w)

    def _sem_test(self, out, instr) -> None:
        if not self._live:
            return                    # flags are its only effect
        a, b = instr.operands
        w = instr.width
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, a, w, 0, va)
        eb = self._read(out, b, w, 0, vb)
        r = self._t("r")
        out.append(f"{r} = {ea} & {eb}")
        self._flags(out, "logic", ea, eb, r, w)

    def _sem_cmpxchg(self, out, instr) -> None:
        dst, src = instr.operands
        w = instr.width
        cur = self._t("v")
        ec = self._read(out, dst, w, 0, cur)
        if ec != cur:
            out.append(f"{cur} = {ec}")
        exp = self._t("v")
        out.append(f"{exp} = regs[0] & {self._mask(w)}"
                   if w < 8 else f"{exp} = regs[0]")
        fr = self._t("r")
        out.append(f"{fr} = ({exp} - {cur}) & {self._mask(w)}")
        self._flags(out, "sub", exp, cur, fr, w)
        out.append(f"if {exp} == {cur}:")
        inner: List[str] = []
        nv = self._read(inner, src, w, 0, self._t("v"))
        self._write(inner, dst, w, nv)
        out.extend("    " + line for line in inner)
        out.append("else:")
        out.append(f"    regs[0] = {cur}")

    def _sem_xadd(self, out, instr) -> None:
        dst, src = instr.operands
        w = instr.width
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, dst, w, 0, va)
        eb = self._read(out, src, w, 0, vb)
        if ea != va:
            out.append(f"{va} = {ea}")
        if eb != vb:
            out.append(f"{vb} = {eb}")
        r = self._t("r")
        out.append(f"{r} = ({va} + {vb}) & {self._mask(w)}")
        self._flags(out, "add", va, vb, r, w)
        self._write(out, dst, w, r)
        self._write(out, src, w, va)

    def _sem_mfence(self, out, instr) -> None:
        out.append("m.fences_executed += 1")

    def _sem_nop(self, out, instr) -> None:
        pass

    def _sem_movdq(self, out, instr) -> None:
        dst, src = instr.operands
        self._write(out, dst, 16,
                    self._read(out, src, 16, 0, self._t("v")))

    def _vec_alu(self, out, instr, sym: str) -> None:
        dst, src = instr.operands
        va = self._t("v")
        vb = self._t("v")
        ea = self._read(out, dst, 16, 0, va)
        eb = self._read(out, src, 16, 0, vb)
        if ea != va:
            out.append(f"{va} = {ea}")
        if eb != vb:
            out.append(f"{vb} = {eb}")
        lanes = []
        for i in range(4):
            sh = 32 * i
            a = f"({va} >> {sh} & {_LANE})" if sh else f"({va} & {_LANE})"
            b = f"({vb} >> {sh} & {_LANE})" if sh else f"({vb} & {_LANE})"
            lane = f"(({a} {sym} {b}) & {_LANE})"
            lanes.append(f"{lane} << {sh}" if sh else lane)
        r = self._t("r")
        out.append(f"{r} = {' | '.join(lanes)}")
        self._write(out, dst, 16, r)

    def _sem_vec_add(self, out, instr) -> None:
        self._vec_alu(out, instr, "+")

    def _sem_vec_sub(self, out, instr) -> None:
        self._vec_alu(out, instr, "-")

    def _sem_vec_mul(self, out, instr) -> None:
        self._vec_alu(out, instr, "*")

    def _sem_vec_xor(self, out, instr) -> None:
        self._vec_alu(out, instr, "^")

    def _sem_pextrd(self, out, instr) -> None:
        dst, src, lane = instr.operands
        self.uses_xmm = True
        sh = 32 * (lane.value & 3)
        expr = f"xmm[{src.index}] >> {sh} & {_LANE}" if sh \
            else f"xmm[{src.index}] & {_LANE}"
        self._write(out, dst, 8, f"({expr})")

    def _sem_pinsrd(self, out, instr) -> None:
        dst, src, lane = instr.operands
        self.uses_xmm = True
        v = self._read(out, src, 4, 0, self._t("v"))
        sh = 32 * (lane.value & 3)
        keep = _U128 ^ (_LANE << sh)
        ins = f"{v} << {sh}" if sh else v
        out.append(f"xmm[{dst.index}] = xmm[{dst.index}] & {keep} | {ins}")

    def _sem_pbroadcastd(self, out, instr) -> None:
        dst, src = instr.operands
        self.uses_xmm = True
        v = self._t("v")
        expr = self._read(out, src, 4, 0, v)
        if expr != v:
            out.append(f"{v} = {expr}")
        out.append(f"xmm[{dst.index}] = {v} | {v} << 32 "
                   f"| {v} << 64 | {v} << 96")

    # -- whole-trace assembly ----------------------------------------------

    def _faultable(self, st: _Step) -> bool:
        """Whether a step's body can raise a guest-visible exception
        (memory access or divide trap) — these need the ``k`` marker."""
        if st.kind in ("call", "ret"):
            return True
        if st.kind in ("jmp", "loop", "jcc_exit"):
            return False
        instr = st.instr
        if instr.mnemonic in ("idiv", "irem"):
            return True
        if SPEC[instr.mnemonic].implicit_stack is not None:
            return True
        return any(isinstance(op, Mem) for op in instr.operands)

    def _counter_lines(self, j_expr: str, cyc_expr: str,
                       patm_expr: Optional[str],
                       cls_exprs: Dict[str, str],
                       with_iters: bool) -> List[str]:
        """The counter-publication statements shared by every exit."""
        lines = []
        n, full = self.n, self.full_cost
        it_i = f"iters * {n} + " if with_iters else ""
        it_c = f"iters * {full} + " if with_iters else ""
        lines.append(f"m.instructions += {it_i}{j_expr}")
        lines.append(f"t.instructions += {it_i}{j_expr}")
        lines.append(f"t.cycles += {it_c}{cyc_expr}")
        if self.full_atomics or patm_expr:
            it_a = f"iters * {self.full_atomics} + " if with_iters \
                and self.full_atomics else ""
            expr = patm_expr if patm_expr else "0"
            if it_a or expr != "0":
                lines.append(f"m.atomic_rmws += {it_a}{expr}".replace(
                    " + 0", ""))
        for klass in self.classes:
            it_k = f"iters * {self.class_full[klass]} + " if with_iters \
                else ""
            expr = cls_exprs.get(klass, "0")
            line = f"bc['{klass}'] += {it_k}{expr}"
            line = line.replace(" + 0", "") if expr == "0" else line
            if it_k or expr != "0":
                lines.append(line)
        return lines

    def _exit_lines(self, retired: int, target_pc_expr: str,
                    prefixes, dec: bool = True) -> List[str]:
        """Epilogue for a run-time exit after ``retired`` instructions
        of the current pass (side exits, budget stops, trace ends).
        ``dec`` charges the retired count against the quantum budget —
        False in the bounded body, which decrements per instruction."""
        pcyc, patm, pcls = prefixes
        lines = ([f"budget -= {retired}"] if retired and dec else [])
        lines += [f"cpu.pc = {target_pc_expr}",
                  "cpu.zf = zf", "cpu.sf = sf", "cpu.cf = cf",
                  "cpu.of = of",
                  f"m.total_cycles = total + {pcyc[retired]}"
                  if pcyc[retired] else "m.total_cycles = total",
                  "m.wall_cycles = wall"]
        cls_exprs = {klass: str(pcls[klass][retired])
                     for klass in self.classes if pcls[klass][retired]}
        patm_expr = str(patm[retired]) if patm[retired] else None
        lines += self._counter_lines(str(retired), str(pcyc[retired]),
                                     patm_expr, cls_exprs, self.is_loop)
        lines.append("return budget")
        return lines

    _FLAG_DEFS_ALL = frozenset((
        "alu", "shl", "shr", "sar", "imul", "idiv", "irem", "neg",
        "cmp", "test", "cmpxchg", "xadd"))
    _FLAG_DEFS_NO_CF = frozenset(("inc", "dec"))
    _ALL_FLAGS = frozenset(("zf", "sf", "cf", "of"))

    def _flag_liveness(self) -> List[frozenset]:
        """Per-step flag-emission filters (dead-flag elimination).

        Backward liveness over the trace: a step's flag updates can be
        skipped when every flag it defines is overwritten before the
        next *observation point*.  Observation points are conservative:
        any exit (side exits and the trace end publish the flag locals
        to the CPU) and any faultable step (the fault recovery block
        publishes the locals, which must therefore track the
        interpreter's flags exactly at every potential fault).  The
        bounded body ignores these filters — every step there precedes
        a potential budget stop, so all updates stay.
        """
        live = set(self._ALL_FLAGS)
        out: List[frozenset] = [self._ALL_FLAGS] * self.n
        for i in reversed(range(self.n)):
            st = self.steps[i]
            sem = SPEC[st.instr.mnemonic].sem if st.kind == "straight" \
                else None
            if sem in self._FLAG_DEFS_ALL:
                defs = self._ALL_FLAGS
            elif sem in self._FLAG_DEFS_NO_CF:
                defs = frozenset(("zf", "sf", "of"))
            else:
                defs = frozenset()
            faultable = self._faultable(st)
            out[i] = self._ALL_FLAGS if faultable else frozenset(live)
            if faultable or st.kind in ("jcc_exit", "ret", "loop"):
                # Exits publish all four flags (the loop back edge via
                # its fallthrough exit and the guard-break epilogue).
                live = set(self._ALL_FLAGS)
            else:
                live -= defs
        return out

    def _emit_step(self, i: int, st: _Step, prefixes,
                   checked: bool) -> List[str]:
        """Render one step for the fast body (``checked=False``) or
        the bounded body (``checked=True``, per-step budget countdown
        reproducing tier-2's exact mid-region preemption points)."""
        self._next_pc = st.next_pc
        self._live = self._ALL_FLAGS if checked else self._live_sets[i]
        out: List[str] = []
        if checked:
            out.append("if not budget:")
            out.extend("    " + line for line in self._exit_lines(
                i, str(st.pc), prefixes, dec=False))
            out.append("budget -= 1")
        if self._faultable(st):
            out.append(f"k = {i}")
        out.append(f"# [{i}] {st.pc:#x} {st.instr.mnemonic}")
        lines: List[str] = []
        kind = st.kind
        if kind == "straight":
            getattr(self, "_sem_" + SPEC[st.instr.mnemonic].sem)(
                lines, st.instr)
            lines.append(f"wall += wc_{st.cost}")
        elif kind == "jmp":
            # Ghost: the jump is retired (budget/counters/wall) but the
            # transfer itself is folded into the trace layout.
            lines.append(f"wall += wc_{st.cost}")
        elif kind == "call":
            sp = self._t("sp")
            self.uses_mem = True
            lines.append(f"{sp} = regs[4] - 8")
            lines.append(f"regs[4] = {sp} & {U64}")
            lines.append(f"wr({sp}, {st.next_pc}, 8)")
            lines.append(f"wall += wc_{st.cost}")
        elif kind == "ret":
            sp = self._t("sp")
            v = self._t("v")
            self.uses_mem = True
            lines.append(f"{sp} = regs[4]")
            lines.append(f"{v} = rd({sp}, 8)")
            lines.append(f"regs[4] = ({sp} + 8) & {U64}")
            lines.append(f"if {v} != {st.expected}:")
            exit_lines = [f"wall += wc_{st.cost}"]
            exit_lines += self._exit_lines(i + 1, v, prefixes,
                                           dec=not checked)
            lines.extend("    " + line for line in exit_lines)
            lines.append(f"wall += wc_{st.cost}")
        elif kind == "jcc_exit":
            cond = cond_source(st.cond_expr, "{}")
            lines.append(f"if {cond}:")
            exit_lines = [f"wall += wc_{st.cost}"]
            exit_lines += self._exit_lines(i + 1, str(st.target),
                                           prefixes, dec=not checked)
            lines.extend("    " + line for line in exit_lines)
            lines.append(f"wall += wc_{st.cost}")
        elif kind == "loop":
            if not checked:
                lines.append(f"budget -= {self.n}")
            lines.append(f"total += {self.full_cost}")
            lines.append("iters += 1")
            lines.append(f"wall += wc_{st.cost}")
            if st.cond_expr is None:
                lines.append("continue")
            else:
                cond = cond_source(st.cond_expr, "{}")
                lines.append(f"if {cond}:")
                lines.append("    continue")
                # Budget/cycles for the full final pass were already
                # charged at the back edge; only pc + publishes remain.
                lines.extend(self._exit_lines(0, str(st.next_pc),
                                              prefixes, dec=False))
        out.extend(lines)
        return out

    def generate(self) -> str:
        steps = self.steps
        pcyc = [0]
        patm = [0]
        pcls = {klass: [0] for klass in self.classes}
        for st in steps:
            pcyc.append(pcyc[-1] + st.cost)
            patm.append(patm[-1] + (1 if st.atomic else 0))
            for klass in self.classes:
                pcls[klass].append(pcls[klass][-1]
                                   + (st.cost if klass == st.klass else 0))
        prefixes = (pcyc, patm, pcls)
        self._tables = {
            "_NEXT": tuple(st.next_pc if st.kind != "jmp" else st.target
                           for st in steps),
            "_PCYC": tuple(pcyc),
            "_PATM": tuple(patm),
        }
        for klass in self.classes:
            self._tables[f"_PCLS_{klass}"] = tuple(pcls[klass])
        self._live_sets = self._flag_liveness()

        fast: List[str] = []
        for i, st in enumerate(steps):
            fast.extend(self._emit_step(i, st, prefixes, checked=False))
        bounded: List[str] = []
        for i, st in enumerate(steps):
            bounded.extend(self._emit_step(i, st, prefixes, checked=True))

        src: List[str] = ["def __trace(m, t, budget, denom, max_cycles):"]
        src.append("    cpu = t.cpu")
        src.append("    regs = cpu.regs")
        if self.uses_xmm:
            src.append("    xmm = cpu.xmm")
        if self.uses_mem:
            src.append("    mem = m.memory")
            src.append("    rd = mem.read_int")
            src.append("    wr = mem.write_int")
        src.append("    bc = m.cycles_by_class")
        src.append("    zf = cpu.zf")
        src.append("    sf = cpu.sf")
        src.append("    cf = cpu.cf")
        src.append("    of = cpu.of")
        src.append("    total = m.total_cycles")
        src.append("    wall = m.wall_cycles")
        src.append("    iters = 0")
        src.append("    k = 0")
        for cost in self.costs:
            src.append(f"    wc_{cost} = {cost} / denom")
        src.append("    try:")
        if self.is_loop:
            src.append("        while 1:")
            src.append(f"            if total + {self.full_cost} "
                       f"> max_cycles:")
            src.append("                break")
            src.append(f"            if budget < {self.n}:")
            src.extend("                " + line for line in bounded)
            src.append("            else:")
            src.extend("                " + line for line in fast)
            # Cycle-guard-break epilogue: zero instructions this pass;
            # the caller's dispatch guard stops re-entry, and tier-2
            # interpretation reproduces the exact CycleLimit boundary.
            src.append(f"        cpu.pc = {self.head}")
            src.append("        cpu.zf = zf")
            src.append("        cpu.sf = sf")
            src.append("        cpu.cf = cf")
            src.append("        cpu.of = of")
            src.append("        m.total_cycles = total")
            src.append("        m.wall_cycles = wall")
            src.append("        if iters:")
            src.append(f"            m.instructions += iters * {self.n}")
            src.append(f"            t.instructions += iters * {self.n}")
            src.append(f"            t.cycles += iters * {self.full_cost}")
            if self.full_atomics:
                src.append(f"            m.atomic_rmws += "
                           f"iters * {self.full_atomics}")
            for klass in self.classes:
                src.append(f"            bc['{klass}'] += "
                           f"iters * {self.class_full[klass]}")
            src.append("        return budget")
        else:
            src.append(f"        if budget < {self.n}:")
            src.extend("            " + line for line in bounded)
            # Unreachable (a bounded entry always stops early), but
            # keeps both branches syntactically complete.
            src.extend("            " + line for line in self._exit_lines(
                self.n, str(self.end_pc), prefixes, dec=False))
            src.append("        else:")
            src.extend("            " + line for line in fast)
            src.extend("            " + line for line in self._exit_lines(
                self.n, str(self.end_pc), prefixes, dec=True))
        # Fault recovery: restore exact interpreter-visible state from
        # the k marker and the prefix tables, then re-raise.
        src.append("    except BaseException:")
        src.append("        cpu.pc = _NEXT[k]")
        src.append("        cpu.zf = zf")
        src.append("        cpu.sf = sf")
        src.append("        cpu.cf = cf")
        src.append("        cpu.of = of")
        src.append("        m.total_cycles = total + _PCYC[k]")
        src.append("        m.wall_cycles = wall")
        it_i = f"iters * {self.n} + " if self.is_loop else ""
        it_c = f"iters * {self.full_cost} + " if self.is_loop else ""
        src.append(f"        m.instructions += {it_i}k")
        src.append(f"        t.instructions += {it_i}k")
        src.append(f"        t.cycles += {it_c}_PCYC[k]")
        if any(st.atomic for st in steps):
            it_a = f"iters * {self.full_atomics} + " \
                if self.is_loop and self.full_atomics else ""
            src.append(f"        m.atomic_rmws += {it_a}_PATM[k + 1]")
        for klass in self.classes:
            it_k = f"iters * {self.class_full[klass]} + " \
                if self.is_loop else ""
            src.append(f"        bc['{klass}'] += {it_k}_PCLS_{klass}[k]")
        src.append("        raise")
        return "\n".join(src) + "\n"

    def compile(self) -> Trace:
        source = self.generate()
        namespace = dict(self._tables)
        namespace["EmulationFault"] = EmulationFault
        namespace["__builtins__"] = {"int": int}
        code = compile(source, f"<jit-trace-{self.head:#x}>", "exec")
        exec(code, namespace)  # noqa: S102 - source generated above
        fn = namespace["__trace"]
        # min_budget is 1: the bounded body reproduces tier-2's exact
        # mid-region preemption, so any positive budget may enter.
        return Trace(fn, self.head, self.n, 1, self.full_cost,
                     self.is_loop, source)


class _Untraceable(Exception):
    """An operand shape the code generator does not fold."""
    pass


def build_trace(machine, head: int) -> Optional[Trace]:
    """Discover, generate and compile the trace at ``head``; None when
    the region is too short or contains an untraceable instruction."""
    try:
        steps, end_pc, loop_cond = _build_steps(machine, head)
    except (EmulationFault, MemoryFault, KeyError):
        return None
    if len(steps) < MIN_TRACE_INSTRS:
        return None
    try:
        return _Gen(steps, head, end_pc, loop_cond).compile()
    except _Untraceable:
        return None


# --- the runtime -------------------------------------------------------------

class TraceJit:
    """Per-machine tier-3 state: hotness counters + the trace cache.

    The trace cache itself is shared per image (compiled traces close
    over nothing machine-specific), so repeated runs of a cached
    workload image skip recompilation.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.threshold = max(2, int(machine.jit_threshold))
        self.heat: Dict[int, int] = {}
        image = machine.image
        shared = getattr(image, "_jit_shared_traces", None)
        if shared is None:
            shared = {}
            try:
                image._jit_shared_traces = shared
            except AttributeError:  # pragma: no cover - frozen images
                pass
        self.traces: Dict[int, Optional[Trace]] = shared
        self.compiled = 0
        self.failures = 0
        self.entries = 0
        self.trace_instructions = 0
        self.deopts = 0
        profile = machine.jit_profile
        if profile is not None:
            # One arrival below the trigger: the next taken branch into
            # a profiled-hot block compiles it immediately.
            for addr in profile.hot_blocks():
                self.heat[addr] = self.threshold - 1

    def invalidate(self) -> None:
        """Drop every compiled trace and reset hotness counters (code
        bytes changed; see Machine.invalidate_decode_cache)."""
        self.traces.clear()
        self.heat.clear()

    def compile_trace(self, head: int) -> None:
        """Compile (or cache the failure of) the trace at ``head``."""
        if head >= IMPORT_STUB_BASE or head == EXIT_ADDR \
                or head == THREAD_EXIT_ADDR:
            return
        try:
            trace = build_trace(self.machine, head)
        except Exception:
            trace = None
        if trace is None:
            self.failures += 1
        else:
            self.compiled += 1
        self.traces[head] = trace

    def stats(self) -> Dict[str, int]:
        """The ``jit.*`` counter snapshot (see Machine.jit_stats)."""
        live = sum(1 for t in self.traces.values() if t is not None)
        return {
            "jit.traces": live,
            "jit.compiled": self.compiled,
            "jit.failures": self.failures,
            "jit.entries": self.entries,
            "jit.instructions": self.trace_instructions,
            "jit.deopts": self.deopts,
        }


def run_jit(machine, max_cycles: int) -> int:
    """The tier-3 engine's outer scheduling loop.

    Identical scheduling decisions to ``run_fast`` (same RNG draws,
    same context-switch accounting, same fault points); runnable
    quanta go to the trace-dispatching chain executor.  Register-
    traffic profiling deopts the whole run to tier-2 — generated code
    bypasses the counting register accessors.
    """
    jit = machine._jit
    if jit is None:
        jit = machine._jit = TraceJit(machine)
    if machine.profile_registers:
        return run_fast(machine, max_cycles)
    current = None
    budget = 0
    rng = machine.rng
    quantum = machine.quantum
    cores = machine.cores
    while not machine.exited:
        if machine.total_cycles > max_cycles:
            machine.fault = CycleLimitExceeded("cycle budget exceeded", 0, -1)
            raise machine.fault
        if current is None or budget <= 0 or \
                current.state != ThreadContext.RUNNABLE:
            previous = current
            current = machine._pick_thread()
            if current is None:
                break
            if previous is not None and current is not previous:
                machine.context_switches += 1
            budget = quantum + rng.randrange(quantum)
        if machine.step_hook is None and "_step" not in machine.__dict__:
            pc = current.cpu.pc
            if pc < IMPORT_STUB_BASE and pc != EXIT_ADDR \
                    and pc != THREAD_EXIT_ADDR:
                if machine.indirect_hooks:
                    # Deopt: tier-2 chain fires indirect hooks exactly.
                    budget = _run_chain(machine, current, budget,
                                        max_cycles)
                else:
                    budget = _run_chain_jit(machine, current, budget,
                                            max_cycles, jit)
                continue
        try:
            cost = machine._step(current)
        except MemoryFault as exc:
            machine.fault = EmulationFault(str(exc), current.cpu.pc,
                                           current.tid)
            raise machine.fault from exc
        except EmulationFault as exc:
            machine.fault = exc
            raise
        budget -= 1
        machine.wall_cycles += cost / max(1, min(machine._runnable, cores))
    return machine.exit_code


def _run_chain_jit(machine, thread, budget: int, max_cycles: int,
                   jit: TraceJit) -> int:
    """``engine._run_chain`` with trace dispatch and heat counting.

    Per-instruction behaviour (counter buffering, fault wrapping,
    publication) is byte-for-byte the tier-2 chain; the additions are
    (a) a trace-cache probe per chain iteration, entered only when the
    quantum and cycle budgets cover a full pass, and (b) a hotness
    bump per *taken* control transfer, compiling at the threshold.
    """
    cpu = thread.cpu
    plans = machine._plans
    plan_at = machine._plan_at
    by_class = machine.cycles_by_class
    traces = jit.traces
    heat = jit.heat
    threshold = jit.threshold
    denom = machine._runnable
    if denom > machine.cores:
        denom = machine.cores
    if denom < 1:
        denom = 1
    total = machine.total_cycles
    wall = machine.wall_cycles
    t_cycles = thread.cycles
    t_instr = thread.instructions
    n_instr = machine.instructions
    atomics = machine.atomic_rmws
    jit_insns = 0
    try:
        while budget > 0:
            if total > max_cycles:
                machine.fault = CycleLimitExceeded(
                    "cycle budget exceeded", 0, -1)
                raise machine.fault
            pc = cpu.pc
            trace = traces.get(pc)
            if trace is not None:
                # budget > 0 holds (loop invariant); the bounded body
                # preempts mid-region exactly as tier-2 would.  Only
                # the cycle budget must cover a full pass, so that no
                # in-trace CycleLimit check is needed — near the cycle
                # limit the chain interprets and faults precisely.
                if total + trace.cost_cap <= max_cycles:
                    machine.total_cycles = total
                    machine.wall_cycles = wall
                    machine.instructions = n_instr
                    machine.atomic_rmws = atomics
                    thread.cycles = t_cycles
                    thread.instructions = t_instr
                    try:
                        budget = trace.fn(machine, thread, budget,
                                          denom, max_cycles)
                    finally:
                        total = machine.total_cycles
                        wall = machine.wall_cycles
                        jit_insns += machine.instructions - n_instr
                        n_instr = machine.instructions
                        atomics = machine.atomic_rmws
                        t_cycles = thread.cycles
                        t_instr = thread.instructions
                    jit.entries += 1
                    tgt = cpu.pc
                    h = heat.get(tgt, 0) + 1
                    heat[tgt] = h
                    if h == threshold and tgt not in traces:
                        jit.compile_trace(tgt)
                    continue
                jit.deopts += 1
            plan = plans.get(pc)
            if plan is None:
                if pc >= IMPORT_STUB_BASE or pc == EXIT_ADDR \
                        or pc == THREAD_EXIT_ADDR:
                    break
                plan = plan_at(pc)
            handler, instr, size, cost, klass, atomic = plan
            if atomic:
                atomics += 1
            np = pc + size
            cpu.pc = np
            handler(machine, thread, instr)
            budget -= 1
            t_cycles += cost
            t_instr += 1
            total += cost
            n_instr += 1
            by_class[klass] += cost
            wall += cost / denom
            if machine.exited:
                break
            if cpu.pc != np:
                tgt = cpu.pc
                h = heat.get(tgt, 0) + 1
                heat[tgt] = h
                if h == threshold and tgt not in traces:
                    jit.compile_trace(tgt)
    except MemoryFault as exc:
        # Same wrapping (and same post-advance pc) as the seed loop.
        machine.fault = EmulationFault(str(exc), cpu.pc, thread.tid)
        raise machine.fault from exc
    except CycleLimitExceeded:
        raise
    except EmulationFault as exc:
        machine.fault = exc
        raise
    finally:
        machine.total_cycles = total
        machine.wall_cycles = wall
        machine.instructions = n_instr
        machine.atomic_rmws = atomics
        thread.cycles = t_cycles
        thread.instructions = t_instr
        jit.trace_instructions += jit_insns
    return budget
