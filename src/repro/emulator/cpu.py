"""Per-thread architectural CPU state."""

from __future__ import annotations

from typing import List

U64 = (1 << 64) - 1
U128 = (1 << 128) - 1


class CpuState:
    """Registers, flags and the TLS base of one hardware thread."""

    __slots__ = ("regs", "xmm", "zf", "sf", "cf", "of", "pc", "tls_base")

    def __init__(self) -> None:
        self.regs: List[int] = [0] * 16
        self.xmm: List[int] = [0] * 8          # 128-bit values
        self.zf = False
        self.sf = False
        self.cf = False
        self.of = False
        self.pc = 0
        self.tls_base = 0

    # -- register access (unsigned 64-bit canonical form) ------------------

    def get(self, index: int) -> int:
        """Read a GPR as an unsigned 64-bit value."""
        return self.regs[index]

    def set(self, index: int, value: int) -> None:
        """Write a GPR (value is truncated to 64 bits)."""
        self.regs[index] = value & U64

    def get_signed(self, index: int) -> int:
        """Read a GPR as a signed 64-bit value."""
        value = self.regs[index]
        return value - (1 << 64) if value >= (1 << 63) else value

    # -- flags as a packed nibble (used by context marshalling) ------------

    def pack_flags(self) -> int:
        """Encode ZF/SF/CF/OF into one integer (for snapshots)."""
        return (int(self.zf) | (int(self.sf) << 1)
                | (int(self.cf) << 2) | (int(self.of) << 3))

    def unpack_flags(self, value: int) -> None:
        """Restore ZF/SF/CF/OF from pack_flags() output."""
        self.zf = bool(value & 1)
        self.sf = bool(value & 2)
        self.cf = bool(value & 4)
        self.of = bool(value & 8)

    def snapshot(self) -> dict:
        """A dict copy of the register file and flags, for tracing."""
        return {
            "regs": list(self.regs),
            "xmm": list(self.xmm),
            "flags": self.pack_flags(),
            "pc": self.pc,
            "tls_base": self.tls_base,
        }


class ProfiledCpuState(CpuState):
    """A :class:`CpuState` that counts register-file traffic.

    Used when the machine is built with ``profile_registers=True``
    (``polynima stats --profile-regs``): every GPR read/write is
    tallied so register pressure shows up in the perf counters
    (``emu.thread.<tid>.reg_reads`` / ``reg_writes``).  Kept out of
    the default :class:`CpuState` so the interpreter's hot loop pays
    nothing when profiling is off.
    """

    __slots__ = ("reg_reads", "reg_writes")

    def __init__(self) -> None:
        super().__init__()
        self.reg_reads = 0
        self.reg_writes = 0

    def get(self, index: int) -> int:
        self.reg_reads += 1
        return self.regs[index]

    def set(self, index: int, value: int) -> None:
        self.reg_writes += 1
        self.regs[index] = value & U64

    def get_signed(self, index: int) -> int:
        self.reg_reads += 1
        return super().get_signed(index)
