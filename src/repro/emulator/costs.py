"""Cycle cost model for VX instructions.

Costs are loosely calibrated against x86 latencies: memory traffic and
serialising/atomic operations dominate, SIMD processes four lanes for
the price of one scalar op.  The normalised-runtime experiments only
depend on *ratios* between original and recompiled binaries, so the
absolute scale is irrelevant; what matters is that atomics, fences and
memory operations carry realistic relative weight.
"""

from __future__ import annotations

BASE_COSTS = {
    "mov": 1, "movsx": 1, "lea": 1, "xchg": 2,
    "push": 2, "pop": 2,
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "shr": 1, "sar": 1,
    "imul": 3, "idiv": 22, "irem": 22,
    "neg": 1, "not": 1, "inc": 1, "dec": 1,
    "cmp": 1, "test": 1,
    "jmp": 1, "call": 2, "ret": 2,
    "je": 1, "jne": 1, "jl": 1, "jle": 1, "jg": 1, "jge": 1,
    "jb": 1, "jbe": 1, "ja": 1, "jae": 1, "js": 1, "jns": 1,
    "cmpxchg": 4, "xadd": 2, "mfence": 12,
    "movdq": 1, "paddd": 1, "psubd": 1, "pmulld": 2, "pxor": 1,
    "pextrd": 2, "pinsrd": 2, "pbroadcastd": 1,
    "nop": 1, "hlt": 1, "ud2": 1, "rdtls": 1,
}

#: Extra cost per memory operand touched.
MEMORY_ACCESS_COST = 3

#: Extra cost of the bus lock taken by LOCK-prefixed instructions and
#: implicitly-locked XCHG-with-memory.
LOCK_COST = 16

#: Fixed dispatch cost of a call through an import stub (PLT-like).
EXTERNAL_CALL_COST = 8

#: Perf-counter instruction classes (``emu.cycles.<class>`` counters).
#: Every BASE_COSTS mnemonic maps to exactly one class; external calls
#: are accounted separately under the synthetic class "external".
INSTR_CLASS_NAMES = ("mov", "alu", "branch", "atomic", "fence", "simd",
                     "misc", "external")

_CLASS_PATTERNS = {
    "mov": {"mov", "movsx", "lea", "push", "pop"},
    "atomic": {"xchg", "cmpxchg", "xadd"},
    "fence": {"mfence"},
    "branch": {"jmp", "call", "ret", "je", "jne", "jl", "jle", "jg", "jge",
               "jb", "jbe", "ja", "jae", "js", "jns"},
    "simd": {"movdq", "paddd", "psubd", "pmulld", "pxor", "pextrd",
             "pinsrd", "pbroadcastd"},
    "misc": {"nop", "hlt", "ud2", "rdtls"},
}


def classify(mnemonic: str) -> str:
    """The perf-counter class of a mnemonic (default: "alu")."""
    for name, members in _CLASS_PATTERNS.items():
        if mnemonic in members:
            return name
    return "alu"


#: mnemonic -> class, precomputed for the interpreter's hot loop.
INSTR_CLASS = {mnemonic: classify(mnemonic) for mnemonic in BASE_COSTS}
