"""Cycle cost model for VX instructions, derived from the ISA spec.

Costs are loosely calibrated against x86 latencies: memory traffic and
serialising/atomic operations dominate, SIMD processes four lanes for
the price of one scalar op.  The normalised-runtime experiments only
depend on *ratios* between original and recompiled binaries, so the
absolute scale is irrelevant; what matters is that atomics, fences and
memory operations carry realistic relative weight.

The per-mnemonic numbers and classes live in ``isa/spec.py`` — this
module is a derived view plus the costs that are not per-mnemonic
(memory traffic, bus locks, import-stub dispatch).
"""

from __future__ import annotations

from ..isa.spec import PERF_CLASS_NAMES, SPEC

#: mnemonic -> base cycle cost, in opcode order.
BASE_COSTS = {name: spec.cost for name, spec in SPEC.items()}

#: Extra cost per memory operand touched.
MEMORY_ACCESS_COST = 3

#: Extra cost of the bus lock taken by LOCK-prefixed instructions and
#: implicitly-locked XCHG-with-memory.
LOCK_COST = 16

#: Fixed dispatch cost of a call through an import stub (PLT-like).
EXTERNAL_CALL_COST = 8

#: Perf-counter instruction classes (``emu.cycles.<class>`` counters).
#: Every spec mnemonic maps to exactly one class; external calls are
#: accounted separately under the synthetic class "external".
INSTR_CLASS_NAMES = PERF_CLASS_NAMES

#: mnemonic -> class, precomputed for the interpreter's hot loop.
INSTR_CLASS = {name: spec.perf_class for name, spec in SPEC.items()}


def classify(mnemonic: str) -> str:
    """The perf-counter class of a mnemonic.

    Total over the spec: an unknown mnemonic raises KeyError instead
    of silently defaulting to "alu" as it used to.
    """
    return INSTR_CLASS[mnemonic]


def static_cost(instr) -> int:
    """The full static cycle cost of one decoded instruction.

    Base cost + bus-lock penalty for atomic RMWs + memory traffic per
    explicit memory operand.  This is the one definition shared by the
    plan cache (``Machine._plan_at``), the reference interpreter and
    the tier-3 trace JIT's folded cost constants — all three must
    charge identical cycles or the engines diverge.
    """
    from ..isa.instructions import Mem
    cost = BASE_COSTS[instr.mnemonic]
    if instr.is_atomic:
        cost += LOCK_COST
    cost += MEMORY_ACCESS_COST * sum(
        1 for op in instr.operands if isinstance(op, Mem))
    return cost


def _validate() -> None:
    """Totality: costs and classes exist for every spec mnemonic, carry
    no strays, and use only declared class names."""
    assert set(BASE_COSTS) == set(SPEC), \
        "BASE_COSTS out of sync with the ISA spec"
    assert set(INSTR_CLASS) == set(SPEC), \
        "INSTR_CLASS out of sync with the ISA spec"
    unknown = set(INSTR_CLASS.values()) - set(INSTR_CLASS_NAMES)
    assert not unknown, f"unknown perf classes {unknown}"


_validate()
