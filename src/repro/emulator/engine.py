"""Two-tier execution engine for the VX machine.

Tier 1 — **ExecPlan cache**.  A plan is a per-PC tuple computed once at
decode time::

    (handler, instr, size, cost, klass, atomic)

``handler`` is the unbound dispatch function for the mnemonic, ``cost``
the fully evaluated static cycle cost (base + lock penalty + memory
operand traffic), ``klass`` the perf-counter class name and ``atomic``
whether the instruction counts as an atomic RMW.  With a plan in hand,
the steady-state step is one dict lookup plus the handler call — none
of the per-step cost recomputation (two generator expressions and three
dict probes per instruction) the seed interpreter performed.

Tier 2 — **superblock dispatch** (:func:`run_fast`).  Within one
scheduling quantum the current thread executes straight-line (and
branchy) guest code without re-entering the outer ``run()`` loop: the
chain executor in :func:`_run_chain` keeps every per-instruction
counter in a local variable and publishes them when the chain breaks.
The seed loop's per-instruction runnable-thread rescan is replaced by
the machine's incrementally maintained ``_runnable`` counter, updated
only on thread state transitions (spawn/block/wake/done) and resynced
for free at every ``_pick_thread``.

Determinism is a hard invariant, bit for bit:

* the RNG is consumed in exactly the seed sequence — one
  ``randrange(len(runnable))`` per pick plus one ``randrange(quantum)``
  per budget draw, and nothing else;
* preemption happens at the same instruction boundaries (the budget is
  decremented once per retired instruction, planned or not);
* ``wall_cycles`` is accumulated with the identical sequence of float
  additions ``cost / max(1, min(runnable, cores))`` — the divisor stays
  an int, and planned instructions cannot change the runnable count,
  so hoisting it out of the chain loop preserves every intermediate
  rounding;
* faults are raised at the same instruction with the same recorded
  ``machine.fault``.

Opt-in layers compose structurally: a machine with a ``step_hook`` or
an instance-level ``_step`` (the sanitizer's wrapper) never enters the
chain executor — every instruction takes the hook-preserving single
step path, which still benefits from the incremental runnable counter.
``invalidate_decode_cache()`` drops plans together with decodes, and
``call_guest`` re-enters via ``_step`` which shares the same plan
cache.  ``tests/integration/test_engine_equivalence.py`` pins the
invariant against the seed loop; ``docs/PERFORMANCE.md`` documents the
design and the throughput benchmark.
"""

from __future__ import annotations

from ..binfmt import IMPORT_STUB_BASE
from ..isa.instructions import Imm, Instruction, Mem
from ..isa.registers import Reg
from ..isa.spec import SPEC
from .cpu import U64
from .machine import (CycleLimitExceeded, EmulationFault, EXIT_ADDR,
                      THREAD_EXIT_ADDR, ThreadContext)
from .memory import MemoryFault

__all__ = ["run_fast", "specialize"]


def run_fast(machine, max_cycles: int) -> int:
    """The fast engine's outer scheduling loop.

    Mirrors the seed ``Machine._run_reference`` decision for decision —
    same RNG draws, same context-switch accounting, same fault points —
    but hands runnable quanta to the superblock chain executor whenever
    no per-step hook is installed.
    """
    current = None
    budget = 0
    rng = machine.rng
    quantum = machine.quantum
    cores = machine.cores
    while not machine.exited:
        if machine.total_cycles > max_cycles:
            machine.fault = CycleLimitExceeded("cycle budget exceeded", 0, -1)
            raise machine.fault
        if current is None or budget <= 0 or \
                current.state != ThreadContext.RUNNABLE:
            previous = current
            current = machine._pick_thread()
            if current is None:
                break
            if previous is not None and current is not previous:
                machine.context_switches += 1
            budget = quantum + rng.randrange(quantum)
        if machine.step_hook is None and "_step" not in machine.__dict__:
            pc = current.cpu.pc
            if pc < IMPORT_STUB_BASE and pc != EXIT_ADDR \
                    and pc != THREAD_EXIT_ADDR:
                budget = _run_chain(machine, current, budget, max_cycles)
                continue
        # Single-step path: magic return addresses, import stubs, or a
        # hooked/sanitized machine.  Exactly the seed loop's body, with
        # the incremental runnable counter replacing the O(threads)
        # rescan (external calls may block/wake/spawn, so the counter
        # is re-read after every step).
        try:
            cost = machine._step(current)
        except MemoryFault as exc:
            machine.fault = EmulationFault(str(exc), current.cpu.pc,
                                           current.tid)
            raise machine.fault from exc
        except EmulationFault as exc:
            machine.fault = exc
            raise
        budget -= 1
        machine.wall_cycles += cost / max(1, min(machine._runnable, cores))
    return machine.exit_code


def _run_chain(machine, thread, budget: int, max_cycles: int) -> int:
    """Execute planned guest instructions on ``thread`` until the
    quantum budget runs out, an unplanned PC (magic return address or
    import stub) is reached, the machine exits, or a fault propagates.

    Returns the remaining budget.  All per-instruction counters live in
    locals for the duration of the chain and are published in the
    ``finally`` block, so observable machine state is exact at every
    exit — including fault exits mid-chain.
    """
    cpu = thread.cpu
    plans = machine._plans
    plan_at = machine._plan_at
    by_class = machine.cycles_by_class
    # Planned instructions never change thread states, so the wall-clock
    # divisor is loop-invariant.  It must stay an *int* divisor: the
    # reference loop computes ``cost / max(1, min(runnable, cores))``
    # and bit-identical wall_cycles requires the identical division.
    denom = machine._runnable
    if denom > machine.cores:
        denom = machine.cores
    if denom < 1:
        denom = 1
    total = machine.total_cycles
    wall = machine.wall_cycles
    t_cycles = thread.cycles
    t_instr = thread.instructions
    n_instr = machine.instructions
    atomics = machine.atomic_rmws
    try:
        while budget > 0:
            if total > max_cycles:
                machine.fault = CycleLimitExceeded(
                    "cycle budget exceeded", 0, -1)
                raise machine.fault
            pc = cpu.pc
            plan = plans.get(pc)
            if plan is None:
                if pc >= IMPORT_STUB_BASE or pc == EXIT_ADDR \
                        or pc == THREAD_EXIT_ADDR:
                    break
                plan = plan_at(pc)
            handler, instr, size, cost, klass, atomic = plan
            if atomic:
                atomics += 1
            cpu.pc = pc + size
            handler(machine, thread, instr)
            budget -= 1
            t_cycles += cost
            t_instr += 1
            total += cost
            n_instr += 1
            by_class[klass] += cost
            wall += cost / denom
            if machine.exited:
                break
    except MemoryFault as exc:
        # Same wrapping (and same post-advance pc) as the seed loop.
        machine.fault = EmulationFault(str(exc), cpu.pc, thread.tid)
        raise machine.fault from exc
    except CycleLimitExceeded:
        raise
    except EmulationFault as exc:
        machine.fault = exc
        raise
    finally:
        machine.total_cycles = total
        machine.wall_cycles = wall
        machine.instructions = n_instr
        machine.atomic_rmws = atomics
        thread.cycles = t_cycles
        thread.instructions = t_instr
    return budget


# --- plan-time handler specialization ----------------------------------------
#
# The second half of "pre-specialized execution plans": at plan-build
# time the operand *shapes* of an instruction are known, so the generic
# handler's per-retire isinstance dispatch and width branching can be
# compiled away into a closure over precomputed indices, masks, and
# address formulas.  Specialized handlers keep the generic calling
# convention ``handler(machine, thread, instr)`` and go through
# ``cpu.get``/``cpu.set`` and ``memory.read_int``/``write_int``, so
# register-traffic profiling (ProfiledCpuState) and fault behaviour
# are bit-identical to the generic path — the specializer only removes
# work that cannot change observable state.  Anything without a
# specialization (vector operands, indirect branches, shifts, atomics,
# SIMD) falls back to the generic dispatch handler unchanged.

#: jcc mnemonic -> flag predicate.  The compiled spec predicates are
#: the very callables Machine._cond evaluates, so both engines agree
#: by construction.
_CONDITIONS = {name: spec.cond for name, spec in SPEC.items()
               if spec.branch_kind == "jcc"}


def _alu_flags_fn(alu_op: str):
    """The flag-producing evaluator for a spec ``alu_op``, specialized
    through the machine's flag helpers (semantics stay in one place)."""
    if alu_op == "add":
        return lambda m, cpu, a, b, w: m._flags_add(cpu, a, b, w)
    if alu_op == "sub":
        return lambda m, cpu, a, b, w: m._flags_sub(cpu, a, b, w)
    if alu_op == "and":
        return lambda m, cpu, a, b, w: m._flags_logic(cpu, a & b, w)
    if alu_op == "or":
        return lambda m, cpu, a, b, w: m._flags_logic(cpu, a | b, w)
    if alu_op == "xor":
        return lambda m, cpu, a, b, w: m._flags_logic(cpu, a ^ b, w)
    raise ValueError(f"no ALU evaluator for {alu_op!r}")


#: mnemonic -> flag-producing ALU evaluator, for the spec's ALU group.
_ALU_FLAGS = {name: _alu_flags_fn(spec.alu_op)
              for name, spec in SPEC.items() if spec.alu_op}


def _addr_fn(mem: Mem):
    """Compile a Mem operand's effective-address formula to a closure.

    Same register read sequence as Machine._mem_addr (base before
    index), so profiled register traffic is unchanged.
    """
    disp = mem.disp
    base = mem.base.index if mem.base is not None else None
    index = mem.index.index if mem.index is not None else None
    scale = mem.scale
    if base is None and index is None:
        const = disp & U64
        return lambda cpu: const
    if index is None:
        return lambda cpu: (disp + cpu.get(base)) & U64
    if base is None:
        return lambda cpu: (disp + cpu.get(index) * scale) & U64
    return lambda cpu: (disp + cpu.get(base)
                        + cpu.get(index) * scale) & U64


def _reader(op, width: int):
    """A closure reading ``op`` exactly as Machine._read_operand would,
    or None when no specialization applies (vector registers)."""
    if isinstance(op, Reg):
        if op.is_vector:
            return None
        idx = op.index
        if width == 8:
            return lambda m, t: t.cpu.get(idx)
        mask = (1 << (width * 8)) - 1
        return lambda m, t: t.cpu.get(idx) & mask
    if isinstance(op, Imm):
        value = op.value & ((1 << (width * 8)) - 1)
        return lambda m, t: value
    if isinstance(op, Mem):
        addr = _addr_fn(op)
        return lambda m, t: m.memory.read_int(addr(t.cpu), width)
    return None


def _writer(op, width: int):
    """A closure writing ``op`` exactly as Machine._write_operand would,
    or None when no specialization applies."""
    if isinstance(op, Reg):
        if op.is_vector:
            return None
        idx = op.index
        if width < 8:
            mask = (1 << (width * 8)) - 1
            return lambda m, t, v: t.cpu.set(idx, v & mask)
        return lambda m, t, v: t.cpu.set(idx, v)
    if isinstance(op, Mem):
        addr = _addr_fn(op)
        return lambda m, t, v: m.memory.write_int(addr(t.cpu), v, width)
    return None


def specialize(instr: Instruction, generic):
    """Return a handler specialized to ``instr``'s operand shapes, or
    ``generic`` when the shape has no specialization."""
    mnemonic = instr.mnemonic
    width = instr.width
    ops = instr.operands

    if mnemonic == "mov":
        read = _reader(ops[1], width)
        write = _writer(ops[0], width)
        if read is None or write is None:
            return generic

        def h_mov(m, t, i, read=read, write=write):
            write(m, t, read(m, t))
        return h_mov

    if mnemonic == "lea":
        if not (isinstance(ops[0], Reg) and not ops[0].is_vector
                and isinstance(ops[1], Mem)):
            return generic
        idx = ops[0].index
        addr = _addr_fn(ops[1])

        def h_lea(m, t, i, idx=idx, addr=addr):
            cpu = t.cpu
            cpu.set(idx, addr(cpu))
        return h_lea

    if mnemonic in ("cmp", "test"):
        read_a = _reader(ops[0], width)
        read_b = _reader(ops[1], width)
        if read_a is None or read_b is None:
            return generic
        if mnemonic == "cmp":
            def h_cmp(m, t, i, ra=read_a, rb=read_b, w=width):
                m._flags_sub(t.cpu, ra(m, t), rb(m, t), w)
            return h_cmp

        def h_test(m, t, i, ra=read_a, rb=read_b, w=width):
            m._flags_logic(t.cpu, ra(m, t) & rb(m, t), w)
        return h_test

    if mnemonic in _ALU_FLAGS:
        read_d = _reader(ops[0], width)
        read_s = _reader(ops[1], width)
        write_d = _writer(ops[0], width)
        if read_d is None or read_s is None or write_d is None:
            return generic
        flags = _ALU_FLAGS[mnemonic]

        def h_alu(m, t, i, rd=read_d, rs=read_s, wd=write_d,
                  flags=flags, w=width):
            result = flags(m, t.cpu, rd(m, t), rs(m, t), w)
            wd(m, t, result)
        return h_alu

    if mnemonic in ("inc", "dec"):
        read_d = _reader(ops[0], width)
        write_d = _writer(ops[0], width)
        if read_d is None or write_d is None:
            return generic
        add = mnemonic == "inc"

        def h_incdec(m, t, i, rd=read_d, wd=write_d, add=add, w=width):
            cpu = t.cpu
            saved_cf = cpu.cf
            if add:
                result = m._flags_add(cpu, rd(m, t), 1, w)
            else:
                result = m._flags_sub(cpu, rd(m, t), 1, w)
            cpu.cf = saved_cf          # INC/DEC leave CF unchanged
            wd(m, t, result)
        return h_incdec

    if mnemonic in _CONDITIONS and isinstance(ops[0], Imm):
        target = ops[0].value & U64
        cond = _CONDITIONS[mnemonic]

        def h_jcc(m, t, i, cond=cond, target=target):
            cpu = t.cpu
            if cond(cpu):
                cpu.pc = target
        return h_jcc

    if mnemonic == "jmp" and isinstance(ops[0], Imm):
        target = ops[0].value & U64

        def h_jmp(m, t, i, target=target):
            t.cpu.pc = target
        return h_jmp

    if mnemonic == "call" and isinstance(ops[0], Imm):
        target = ops[0].value & U64

        def h_call(m, t, i, target=target):
            cpu = t.cpu
            sp = cpu.get(4) - 8        # RSP
            cpu.set(4, sp)
            m.memory.write_int(sp, cpu.pc, 8)
            cpu.pc = target
        return h_call

    if mnemonic == "push":
        read = _reader(ops[0], 8)
        if read is None:
            return generic

        def h_push(m, t, i, read=read):
            cpu = t.cpu
            value = read(m, t)
            sp = cpu.get(4) - 8
            cpu.set(4, sp)
            m.memory.write_int(sp, value, 8)
        return h_push

    if mnemonic == "pop":
        write = _writer(ops[0], 8)
        if write is None:
            return generic

        def h_pop(m, t, i, write=write):
            cpu = t.cpu
            sp = cpu.get(4)
            value = m.memory.read_int(sp, 8)
            cpu.set(4, sp + 8)
            write(m, t, value)
        return h_pop

    return generic
