"""The VX machine: multithreaded emulator for VXE images."""

from .costs import (BASE_COSTS, EXTERNAL_CALL_COST, INSTR_CLASS,
                    INSTR_CLASS_NAMES, LOCK_COST, MEMORY_ACCESS_COST)
from .cpu import CpuState, ProfiledCpuState
from .extlib import INPUT_BASE, ExternalLibrary
from .machine import (CycleLimitExceeded, EmulationFault, EXIT_ADDR,
                      HEAP_BASE, Machine, STACK_SIZE, THREAD_EXIT_ADDR,
                      ThreadContext)
from .engine import run_fast
from .jit import TraceJit, run_jit
from .memory import Memory, MemoryFault

__all__ = [
    "BASE_COSTS", "EXTERNAL_CALL_COST", "INSTR_CLASS", "INSTR_CLASS_NAMES",
    "LOCK_COST", "MEMORY_ACCESS_COST",
    "CpuState", "ProfiledCpuState", "INPUT_BASE", "ExternalLibrary",
    "CycleLimitExceeded", "EmulationFault", "EXIT_ADDR", "HEAP_BASE",
    "Machine", "STACK_SIZE", "THREAD_EXIT_ADDR", "ThreadContext",
    "Memory", "MemoryFault", "run_fast", "run_jit", "TraceJit",
]
