"""The VX machine: a multithreaded interpreter for VXE images.

Threads are green threads scheduled preemptively with a seeded,
jittered quantum, which makes interleavings deterministic per seed
while still exposing the nondeterministic control flows (and data
races) that motivate the paper.  Each instruction executes atomically
with respect to scheduling, so races manifest at instruction
granularity — exactly the level at which LOCK-prefixed read-modify-
write instructions differ from plain load/op/store sequences.

A simulated wall clock advances by ``cost / min(runnable, cores)`` per
instruction, so multithreaded speedups and slowdowns show up in
normalised runtimes the way they do on real hardware.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..binfmt import IMPORT_STUB_BASE, Image
from ..isa import decode
from ..isa.instructions import Imm, Instruction, Mem
from ..isa.registers import Reg
from ..isa.spec import SPEC
from ..observability import Counters
from .costs import (BASE_COSTS, EXTERNAL_CALL_COST, INSTR_CLASS,
                    INSTR_CLASS_NAMES, LOCK_COST, MEMORY_ACCESS_COST,
                    static_cost)
from .cpu import CpuState, ProfiledCpuState, U64
from .memory import Memory, MemoryFault

#: Magic return addresses recognised by the interpreter.
EXIT_ADDR = 0xDEAD0000          # return here == main returned
THREAD_EXIT_ADDR = 0xDEAD1000   # return here == thread start routine returned

STACK_AREA_TOP = 0x7000_0000
STACK_SIZE = 1 << 18            # 256 KiB per thread
HEAP_BASE = 0x1000_0000
HEAP_SIZE = 1 << 24             # 16 MiB

RSP = 4   # register indices used directly for speed
RAX = 0
RDI = 7
RSI = 6
RDX = 2
RCX = 1
R8 = 8
R9 = 9

_ARG_REG_INDICES = (RDI, RSI, RDX, RCX, R8, R9)


class EmulationFault(Exception):
    """A hardware-level fault in the emulated program (not a host bug)."""

    def __init__(self, message: str, pc: int = 0, thread_id: int = -1) -> None:
        super().__init__(f"{message} (pc={pc:#x}, thread={thread_id})")
        self.message = message
        self.pc = pc
        self.thread_id = thread_id


class CycleLimitExceeded(EmulationFault):
    """The machine's cycle budget ran out (likely deadlock/livelock)."""


class ThreadContext:
    """One emulated thread of execution."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"

    def __init__(self, tid: int, cpu: CpuState, stack_base: int) -> None:
        self.tid = tid
        self.cpu = cpu
        self.stack_base = stack_base
        self.state = self.RUNNABLE
        self.block_key: Optional[object] = None
        self.exit_value = 0
        self.joiners: List[int] = []
        self.cycles = 0
        self.instructions = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<thread {self.tid} {self.state} pc={self.cpu.pc:#x}>"


class Machine:
    """Interprets a VXE image with full multithreading support."""

    #: Valid values for the ``engine`` constructor argument: "fast" is
    #: the two-tier plan-cache + superblock engine (repro.emulator.engine),
    #: "jit" the three-tier engine that additionally trace-compiles hot
    #: superblocks to Python code objects (repro.emulator.jit),
    #: "reference" the seed per-step loop kept as the determinism oracle.
    ENGINES = ("fast", "reference", "jit")

    def __init__(self, image: Image, library=None, seed: int = 0,
                 cores: int = 4, quantum: int = 40,
                 profile_registers: bool = False,
                 sanitizer=None, engine: str = "fast",
                 jit_threshold: int = 16, jit_profile=None) -> None:
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r} "
                             f"(expected one of {self.ENGINES})")
        self.engine = engine
        self.image = image
        self.memory = Memory()
        self.seed = seed
        self.cores = cores
        self.quantum = quantum
        self.rng = random.Random(seed)
        self.threads: List[ThreadContext] = []
        self.stdout = bytearray()
        self.exited = False
        self.exit_code = 0
        self.fault: Optional[EmulationFault] = None
        self.total_cycles = 0
        self.wall_cycles = 0.0
        self.instructions = 0
        # Perf counters (published via perf_counters()).  Plain ints /
        # one dict increment per step keep the hot loop cheap; the
        # register-traffic counters cost more and are opt-in.
        self.atomic_rmws = 0
        self.fences_executed = 0
        self.context_switches = 0
        self.cycles_by_class: Dict[str, int] = {
            name: 0 for name in INSTR_CLASS_NAMES}
        self.profile_registers = profile_registers
        self._cpu_cls = ProfiledCpuState if profile_registers else CpuState
        self._decode_cache: Dict[int, Tuple[Instruction, int]] = {}
        # pc -> (handler, instr, size, cost, class, atomic) execution
        # plans (see repro.emulator.engine): decode-time precomputation
        # of everything the seed _step re-derived on every retire.
        self._plans: Dict[int, Tuple] = {}
        # Runnable-thread count, maintained incrementally on state
        # transitions (spawn/block/wake/done) and resynced at every
        # _pick_thread; replaces the seed loop's per-instruction rescan.
        self._runnable = 0
        self._next_stack_top = STACK_AREA_TOP
        self._next_tid = 0
        # Hooks: called as hook(machine, thread, from_pc, target, kind)
        # for kind in {"jump", "call"} on *indirect* transfers.
        self.indirect_hooks: List[Callable] = []
        # Optional per-instruction hook (expensive; used by the BinRec
        # baseline's full-system tracer model).
        self.step_hook: Optional[Callable] = None
        # Called as hook(machine, thread) when a thread finishes.
        self.thread_done_hooks: List[Callable] = []
        # Opt-in dynamic sanitizer (repro.sanitizers).  When one is
        # attached, the bound-method assignment below shadows the class
        # ``_step`` for this instance only, so unsanitized machines run
        # the exact hot loop with zero extra per-step work.
        self.sanitizer = sanitizer
        self._access_plans: Dict[int, object] = {}
        # Tier-3 trace JIT (repro.emulator.jit), created lazily on the
        # first "jit"-engine run.  The threshold is the superblock-entry
        # count that triggers trace compilation; a Profile seeds blocks
        # it already knows are hot to one arrival below it.
        self.jit_threshold = jit_threshold
        self.jit_profile = jit_profile
        self._jit = None

        for section in image.sections:
            self.memory.map(section.addr, bytes(section.data), section.name)
        self.memory.map(HEAP_BASE, HEAP_SIZE, "heap")

        if library is None:
            from .extlib import ExternalLibrary
            library = ExternalLibrary()
        self.library = library
        library.attach(self)

        if sanitizer is not None:
            sanitizer.attach(self)
            self._step = self._step_sanitized

        self._spawn(image.entry, args=(), magic_ret=EXIT_ADDR)

    # -- thread management ---------------------------------------------------

    def _alloc_stack(self) -> int:
        top = self._next_stack_top
        base = top - STACK_SIZE
        self._next_stack_top = base - 0x1000   # guard gap
        self.memory.map(base, STACK_SIZE, f"stack{self._next_tid}")
        return top

    def _spawn(self, entry: int, args: Tuple[int, ...],
               magic_ret: int) -> ThreadContext:
        cpu = self._cpu_cls()
        top = self._alloc_stack()
        # 16-byte aligned stack with the magic return address on top,
        # preserving the ISA-mandated alignment the paper relies on for
        # atomicity of naturally-aligned accesses.
        sp = (top - 16) & ~0xF
        sp -= 8
        self.memory.write_int(sp, magic_ret, 8)
        cpu.set(RSP, sp)
        cpu.pc = entry
        for reg, value in zip(_ARG_REG_INDICES, args):
            cpu.set(reg, value)
        thread = ThreadContext(self._next_tid, cpu, top - STACK_SIZE)
        self._next_tid += 1
        self.threads.append(thread)
        self._runnable += 1
        return thread

    def spawn_thread(self, entry: int, args: Tuple[int, ...] = ()) -> ThreadContext:
        """Create a new emulated thread (used by pthread_create et al.)."""
        return self._spawn(entry, args, magic_ret=THREAD_EXIT_ADDR)

    def thread(self, tid: int) -> ThreadContext:
        """Look a thread context up by id."""
        return self.threads[tid]

    @property
    def main_thread(self) -> ThreadContext:
        """The initial thread (tid 0)."""
        return self.threads[0]

    def block(self, thread: ThreadContext, key: object) -> None:
        """Park a thread on a wait key until another thread wakes it."""
        if thread.state == ThreadContext.RUNNABLE:
            self._runnable -= 1
        thread.state = ThreadContext.BLOCKED
        thread.block_key = key

    def wake(self, key: object, limit: Optional[int] = None) -> int:
        """Wake up to ``limit`` threads blocked on ``key``; returns count."""
        woken = 0
        for thread in self.threads:
            if thread.state == ThreadContext.BLOCKED and thread.block_key == key:
                thread.state = ThreadContext.RUNNABLE
                thread.block_key = None
                self._runnable += 1
                woken += 1
                if limit is not None and woken >= limit:
                    break
        return woken

    # -- main loop -----------------------------------------------------------

    def run(self, max_cycles: int = 200_000_000) -> int:
        """Run until exit, a fault, or the cycle budget is exhausted.

        Returns the exit code.  Faults are recorded in :attr:`fault` and
        re-raised — callers that *expect* failure (e.g. validating a
        broken baseline recompilation) catch :class:`EmulationFault`.

        Which loop runs is the constructor's ``engine`` choice; both
        consume the RNG in the same sequence and preempt at the same
        instruction boundaries, so results are bit-identical per seed
        (pinned by tests/integration/test_engine_equivalence.py).
        """
        if self.engine == "fast":
            from .engine import run_fast
            return run_fast(self, max_cycles)
        if self.engine == "jit":
            from .jit import run_jit
            return run_jit(self, max_cycles)
        return self._run_reference(max_cycles)

    def _run_reference(self, max_cycles: int) -> int:
        """The seed interpreter loop, verbatim: one ``_step`` per
        iteration and an O(threads) runnable rescan after each retire.
        Kept as the determinism oracle the fast engine is tested
        against and as the throughput benchmark's "before" engine."""
        step = self.__dict__.get("_step") or self._step_reference
        current: Optional[ThreadContext] = None
        budget = 0
        while not self.exited:
            if self.total_cycles > max_cycles:
                self.fault = CycleLimitExceeded(
                    "cycle budget exceeded", 0, -1)
                raise self.fault
            if current is None or budget <= 0 or \
                    current.state != ThreadContext.RUNNABLE:
                previous = current
                current = self._pick_thread()
                if current is None:
                    break
                if previous is not None and current is not previous:
                    self.context_switches += 1
                budget = self.quantum + self.rng.randrange(self.quantum)
            try:
                cost = step(current)
            except MemoryFault as exc:
                self.fault = EmulationFault(str(exc), current.cpu.pc,
                                            current.tid)
                raise self.fault from exc
            except EmulationFault as exc:
                self.fault = exc
                raise
            budget -= 1
            runnable = sum(1 for t in self.threads
                           if t.state == ThreadContext.RUNNABLE)
            self.wall_cycles += cost / max(1, min(runnable, self.cores))
        return self.exit_code

    # -- perf counters --------------------------------------------------------

    def perf_counters(self) -> Counters:
        """Publish the machine's perf counters into a fresh
        :class:`~repro.observability.Counters` registry.

        Built on demand from the plain attribute counters the hot loop
        maintains, so each call returns an independent snapshot and
        successive runs never share state (naming conventions in
        ``docs/OBSERVABILITY.md``)."""
        counters = Counters()
        counters.put("emu.instructions", self.instructions)
        counters.put("emu.cycles", self.total_cycles)
        counters.put("emu.wall_cycles", self.wall_cycles)
        counters.put("emu.atomic_rmws", self.atomic_rmws)
        counters.put("emu.fences", self.fences_executed)
        counters.put("emu.context_switches", self.context_switches)
        counters.put("emu.threads", len(self.threads))
        for name in INSTR_CLASS_NAMES:
            counters.put(f"emu.cycles.{name}", self.cycles_by_class[name])
        for thread in self.threads:
            base = f"emu.thread.{thread.tid}"
            counters.put(f"{base}.instructions", thread.instructions)
            counters.put(f"{base}.cycles", thread.cycles)
            if isinstance(thread.cpu, ProfiledCpuState):
                counters.put(f"{base}.reg_reads", thread.cpu.reg_reads)
                counters.put(f"{base}.reg_writes", thread.cpu.reg_writes)
        if self.sanitizer is not None:
            self.sanitizer.publish(counters)
        return counters

    def _pick_thread(self) -> Optional[ThreadContext]:
        runnable = [t for t in self.threads if t.state == ThreadContext.RUNNABLE]
        # Free resync point for the incremental counter: any direct
        # state mutation from outside the machine heals here, at the
        # latest by the next scheduling decision.
        self._runnable = len(runnable)
        if not runnable:
            if any(t.state == ThreadContext.BLOCKED for t in self.threads):
                blocked = [t.tid for t in self.threads
                           if t.state == ThreadContext.BLOCKED]
                self.fault = EmulationFault(
                    f"deadlock: threads {blocked} all blocked", 0, -1)
                raise self.fault
            return None
        picked = runnable[self.rng.randrange(len(runnable))]
        # Swap the memory fast path's one-entry segment cache to the
        # picked thread's last hit (pure optimisation, no observable
        # effect — see Memory.select_thread).
        self.memory.select_thread(picked.tid)
        return picked

    # -- single-instruction execution -----------------------------------------

    def _decode_at(self, pc: int) -> Tuple[Instruction, int]:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        section = self.image.section_at(pc)
        if section is None or not section.executable:
            raise EmulationFault(f"execute fault at {pc:#x}", pc)
        try:
            instr, size = decode(section.data, pc - section.addr, pc)
        except Exception as exc:
            raise EmulationFault(f"illegal instruction: {exc}", pc)
        self._decode_cache[pc] = (instr, size)
        return instr, size

    def invalidate_decode_cache(self) -> None:
        """Drop cached decodes after code bytes change (additive lifting).

        Execution plans, superblock state and compiled tier-3 traces
        (including the image-attached shared trace cache and the
        hotness counters that would re-trigger compilation) derive
        from decodes, so they are dropped together with them."""
        self._decode_cache.clear()
        self._plans.clear()
        self._access_plans.clear()
        if self._jit is not None:
            self._jit.invalidate()
        shared = getattr(self.image, "_jit_shared_traces", None)
        if shared is not None:
            # Another machine on the same image may have published
            # traces there; the code bytes they specialized are gone.
            shared.clear()

    def jit_stats(self) -> Dict[str, int]:
        """The tier-3 JIT's own ``jit.*`` counters (traces compiled,
        trace entries, instructions retired inside traces, deopts).

        Deliberately *not* part of :meth:`perf_counters`: engine
        snapshots are asserted bit-identical across reference/fast/jit,
        and only the jit engine has traces."""
        if self._jit is None:
            return {}
        return self._jit.stats()

    def _plan_at(self, pc: int) -> Tuple:
        """Build (and cache) the execution plan for ``pc``.

        Everything the seed ``_step`` recomputed per retire — handler
        lookup, static cost (``costs.static_cost``: base + lock penalty
        + memory traffic), perf-counter class, atomic-RMW flag — is
        evaluated once here, at decode time (see
        repro.emulator.engine)."""
        from .engine import specialize
        instr, size = self._decode_at(pc)
        mnemonic = instr.mnemonic
        handler = specialize(instr, _DISPATCH[mnemonic])
        plan = (handler, instr, size, static_cost(instr),
                INSTR_CLASS[mnemonic], instr.is_atomic)
        self._plans[pc] = plan
        return plan

    def _step(self, thread: ThreadContext) -> int:
        """Retire one instruction via the ExecPlan cache.

        Observable behaviour is identical to :meth:`_step_reference`
        (the seed implementation); the steady state is one dict lookup
        plus the handler call."""
        cpu = thread.cpu
        pc = cpu.pc
        if pc in (EXIT_ADDR, THREAD_EXIT_ADDR):
            self._thread_returned(thread, pc)
            return 1
        if pc >= IMPORT_STUB_BASE:
            return self._external_call(thread, pc)
        plan = self._plans.get(pc)
        if plan is None:
            plan = self._plan_at(pc)
        handler, instr, size, cost, klass, atomic = plan
        if self.step_hook is not None:
            self.step_hook(self, thread, instr)
        if atomic:
            self.atomic_rmws += 1
        cpu.pc = pc + size
        handler(self, thread, instr)
        thread.cycles += cost
        thread.instructions += 1
        self.total_cycles += cost
        self.instructions += 1
        self.cycles_by_class[klass] += cost
        return cost

    def _step_reference(self, thread: ThreadContext) -> int:
        """The seed ``_step``, verbatim: per-retire cost recomputation
        with no plan cache.  Only the reference engine runs this; it is
        the baseline the fast engine is benchmarked and tested
        against."""
        cpu = thread.cpu
        pc = cpu.pc
        if pc in (EXIT_ADDR, THREAD_EXIT_ADDR):
            self._thread_returned(thread, pc)
            return 1
        if pc >= IMPORT_STUB_BASE:
            return self._external_call(thread, pc)
        instr, size = self._decode_at(pc)
        if self.step_hook is not None:
            self.step_hook(self, thread, instr)
        cost = BASE_COSTS[instr.mnemonic]
        if instr.is_atomic:
            cost += LOCK_COST
            self.atomic_rmws += 1
        cost += MEMORY_ACCESS_COST * sum(
            1 for op in instr.operands if isinstance(op, Mem))
        cpu.pc = pc + size
        handler = _DISPATCH[instr.mnemonic]
        handler(self, thread, instr)
        thread.cycles += cost
        thread.instructions += 1
        self.total_cycles += cost
        self.instructions += 1
        self.cycles_by_class[INSTR_CLASS[instr.mnemonic]] += cost
        return cost

    def _step_sanitized(self, thread: ThreadContext) -> int:
        """``_step`` with sanitizer callbacks, installed as an instance
        attribute only when a sanitizer is attached.

        Memory-access classification per PC is cached as a *plan*, so
        the steady-state overhead is one dict lookup plus the effective
        address computation(s) per accessing instruction."""
        cpu = thread.cpu
        pc = cpu.pc
        if pc < IMPORT_STUB_BASE and pc != EXIT_ADDR \
                and pc != THREAD_EXIT_ADDR:
            plan = self._access_plans.get(pc)
            if plan is None:
                instr, _ = self._decode_at(pc)
                skip_tls = self.image.metadata.get("polynima") == "1"
                plan = self._access_plans[pc] = _access_plan(instr, skip_tls)
            if plan is not _NO_ACCESS:
                if plan is _FENCE:
                    self.sanitizer.on_fence(thread)
                else:
                    atomic, entries = plan
                    sanitizer = self.sanitizer
                    for mem, is_read, is_write, width in entries:
                        sanitizer.on_access(
                            thread, pc, self._mem_addr(cpu, mem),
                            width, is_read, is_write, atomic)
        return Machine._step(self, thread)

    def _thread_returned(self, thread: ThreadContext, magic: int) -> None:
        if thread.state == ThreadContext.RUNNABLE:
            self._runnable -= 1
        thread.state = ThreadContext.DONE
        thread.exit_value = thread.cpu.get(RAX)
        if magic == EXIT_ADDR:
            self.exited = True
            self.exit_code = thread.exit_value & 0xFF
        self.wake(("join", thread.tid))
        for hook in self.thread_done_hooks:
            hook(self, thread)

    CALLBACK_RET_ADDR = 0xDEAD2000

    def call_guest(self, thread: ThreadContext, fn_addr: int,
                   args: Tuple[int, ...] = (), max_steps: int = 5_000_000) -> int:
        """Synchronously invoke guest code on ``thread`` (library callback).

        Models an external library (e.g. ``qsort``) calling a function
        pointer it was handed: the callee runs on the caller's thread and
        the library resumes when it returns.  Other threads are not
        scheduled during the callback — acceptable, since callbacks run
        in call-site context.
        """
        cpu = thread.cpu
        saved_pc = cpu.pc
        saved_args = [cpu.get(reg) for reg in _ARG_REG_INDICES]
        sp = cpu.get(RSP) - 8
        cpu.set(RSP, sp)
        self.memory.write_int(sp, self.CALLBACK_RET_ADDR, 8)
        cpu.pc = fn_addr
        for reg, value in zip(_ARG_REG_INDICES, args):
            cpu.set(reg, value)
        steps = 0
        while cpu.pc != self.CALLBACK_RET_ADDR:
            if self.exited:
                break
            self._step(thread)
            steps += 1
            if steps > max_steps:
                raise EmulationFault("callback ran away", fn_addr, thread.tid)
        result = cpu.get(RAX)
        cpu.pc = saved_pc
        for reg, value in zip(_ARG_REG_INDICES, saved_args):
            cpu.set(reg, value)
        return result

    def _external_call(self, thread: ThreadContext, pc: int) -> int:
        name = self.image.import_name(pc)
        if name is None:
            raise EmulationFault(f"call to bad import stub {pc:#x}",
                                 pc, thread.tid)
        cpu = thread.cpu
        args = tuple(cpu.get(reg) for reg in _ARG_REG_INDICES)
        # Import-stub dispatch is deliberately NOT reported through
        # indirect_hooks: tracers see external calls as such, never as
        # indirect control-flow transfers (pinned by
        # test_external_call_does_not_fire_indirect_hooks).
        result = self.library.dispatch(name, self, thread, args)
        cost = EXTERNAL_CALL_COST + self.library.cost(name)
        thread.cycles += cost
        self.total_cycles += cost
        self.cycles_by_class["external"] += cost
        if result is not None:
            cpu.set(RAX, result & U64)
        if thread.state == ThreadContext.RUNNABLE and not self.exited:
            # Simulate the ret back to the caller.
            sp = cpu.get(RSP)
            ret = self.memory.read_int(sp, 8)
            cpu.set(RSP, sp + 8)
            cpu.pc = ret
        return cost

    # -- operand evaluation ----------------------------------------------------

    def _mem_addr(self, cpu: CpuState, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += cpu.get(mem.base.index)
        if mem.index is not None:
            addr += cpu.get(mem.index.index) * mem.scale
        return addr & U64

    def _read_operand(self, cpu: CpuState, op, width: int) -> int:
        if isinstance(op, Reg):
            if op.is_vector:
                return cpu.xmm[op.index]
            value = cpu.get(op.index)
            return value & ((1 << (width * 8)) - 1) if width < 8 else value
        if isinstance(op, Imm):
            return op.value & ((1 << (width * 8)) - 1)
        if isinstance(op, Mem):
            return self.memory.read_int(self._mem_addr(cpu, op), width)
        raise EmulationFault(f"bad operand {op!r}")

    def _write_operand(self, cpu: CpuState, op, value: int, width: int) -> None:
        if isinstance(op, Reg):
            if op.is_vector:
                cpu.xmm[op.index] = value & ((1 << 128) - 1)
            else:
                # Sub-64-bit writes zero-extend, as 32-bit ops do on x86-64.
                cpu.set(op.index, value & ((1 << (width * 8)) - 1)
                        if width < 8 else value)
            return
        if isinstance(op, Mem):
            self.memory.write_int(self._mem_addr(cpu, op), value, width)
            return
        raise EmulationFault(f"bad destination {op!r}")

    # -- flag computation --------------------------------------------------------

    def _set_zs(self, cpu: CpuState, result: int, width: int) -> None:
        bits = width * 8
        result &= (1 << bits) - 1
        cpu.zf = result == 0
        cpu.sf = bool(result >> (bits - 1))

    def _flags_add(self, cpu: CpuState, a: int, b: int, width: int) -> int:
        bits = width * 8
        mask = (1 << bits) - 1
        result = (a + b) & mask
        cpu.cf = (a + b) > mask
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), result >> (bits - 1)
        cpu.of = (sa == sb) and (sr != sa)
        self._set_zs(cpu, result, width)
        return result

    def _flags_sub(self, cpu: CpuState, a: int, b: int, width: int) -> int:
        bits = width * 8
        mask = (1 << bits) - 1
        result = (a - b) & mask
        cpu.cf = a < b
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), result >> (bits - 1)
        cpu.of = (sa != sb) and (sr != sa)
        self._set_zs(cpu, result, width)
        return result

    def _flags_logic(self, cpu: CpuState, result: int, width: int) -> int:
        cpu.cf = False
        cpu.of = False
        self._set_zs(cpu, result, width)
        return result & ((1 << (width * 8)) - 1)

    # -- instruction handlers -------------------------------------------------

    def _op_mov(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        value = self._read_operand(cpu, src, instr.width)
        self._write_operand(cpu, dst, value, instr.width)

    def _op_movsx(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        value = self._read_operand(cpu, src, instr.width)
        bits = instr.width * 8
        if value >= 1 << (bits - 1):
            value -= 1 << bits
        self._write_operand(cpu, dst, value & U64, 8)

    def _op_lea(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        self._write_operand(cpu, dst, self._mem_addr(cpu, src), 8)

    def _op_push(self, thread, instr) -> None:
        cpu = thread.cpu
        value = self._read_operand(cpu, instr.operands[0], 8)
        sp = cpu.get(RSP) - 8
        cpu.set(RSP, sp)
        self.memory.write_int(sp, value, 8)

    def _op_pop(self, thread, instr) -> None:
        cpu = thread.cpu
        sp = cpu.get(RSP)
        value = self.memory.read_int(sp, 8)
        cpu.set(RSP, sp + 8)
        self._write_operand(cpu, instr.operands[0], value, 8)

    def _op_xchg(self, thread, instr) -> None:
        cpu = thread.cpu
        a, b = instr.operands
        va = self._read_operand(cpu, a, instr.width)
        vb = self._read_operand(cpu, b, instr.width)
        self._write_operand(cpu, a, vb, instr.width)
        self._write_operand(cpu, b, va, instr.width)

    def _binop(self, thread, instr, fn) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        a = self._read_operand(cpu, dst, instr.width)
        b = self._read_operand(cpu, src, instr.width)
        result = fn(cpu, a, b, instr.width)
        self._write_operand(cpu, dst, result, instr.width)

    def _op_add(self, thread, instr) -> None:
        self._binop(thread, instr, self._flags_add)

    def _op_sub(self, thread, instr) -> None:
        self._binop(thread, instr, self._flags_sub)

    def _op_and(self, thread, instr) -> None:
        self._binop(thread, instr,
                    lambda cpu, a, b, w: self._flags_logic(cpu, a & b, w))

    def _op_or(self, thread, instr) -> None:
        self._binop(thread, instr,
                    lambda cpu, a, b, w: self._flags_logic(cpu, a | b, w))

    def _op_xor(self, thread, instr) -> None:
        self._binop(thread, instr,
                    lambda cpu, a, b, w: self._flags_logic(cpu, a ^ b, w))

    def _op_shl(self, thread, instr) -> None:
        def fn(cpu, a, b, w):
            return self._flags_logic(cpu, a << (b & 63), w)
        self._binop(thread, instr, fn)

    def _op_shr(self, thread, instr) -> None:
        def fn(cpu, a, b, w):
            return self._flags_logic(cpu, a >> (b & 63), w)
        self._binop(thread, instr, fn)

    def _op_sar(self, thread, instr) -> None:
        def fn(cpu, a, b, w):
            bits = w * 8
            if a >= 1 << (bits - 1):
                a -= 1 << bits
            return self._flags_logic(cpu, (a >> (b & 63)) & ((1 << bits) - 1), w)
        self._binop(thread, instr, fn)

    def _op_imul(self, thread, instr) -> None:
        # Logic-style flags (CF=OF cleared), matching the lifted IR
        # (`flags_logic` in the translator); the conformance harness
        # holds the two implementations to the same behaviour.
        def fn(cpu, a, b, w):
            bits = w * 8
            sa = a - (1 << bits) if a >= 1 << (bits - 1) else a
            sb = b - (1 << bits) if b >= 1 << (bits - 1) else b
            return self._flags_logic(cpu, (sa * sb) & ((1 << bits) - 1), w)
        self._binop(thread, instr, fn)

    def _signed_div(self, thread, instr, want_rem: bool) -> None:
        def fn(cpu, a, b, w):
            bits = w * 8
            sa = a - (1 << bits) if a >= 1 << (bits - 1) else a
            sb = b - (1 << bits) if b >= 1 << (bits - 1) else b
            if sb == 0:
                raise EmulationFault("divide by zero", thread.cpu.pc,
                                     thread.tid)
            quot = int(sa / sb)          # C-style truncation
            rem = sa - quot * sb
            result = (rem if want_rem else quot) & ((1 << bits) - 1)
            self._set_zs(cpu, result, w)
            cpu.cf = cpu.of = False
            return result
        self._binop(thread, instr, fn)

    def _op_idiv(self, thread, instr) -> None:
        self._signed_div(thread, instr, want_rem=False)

    def _op_irem(self, thread, instr) -> None:
        self._signed_div(thread, instr, want_rem=True)

    def _unop(self, thread, instr, fn) -> None:
        cpu = thread.cpu
        dst = instr.operands[0]
        a = self._read_operand(cpu, dst, instr.width)
        self._write_operand(cpu, dst, fn(cpu, a, instr.width), instr.width)

    def _op_neg(self, thread, instr) -> None:
        self._unop(thread, instr,
                   lambda cpu, a, w: self._flags_sub(cpu, 0, a, w))

    def _op_not(self, thread, instr) -> None:
        self._unop(thread, instr,
                   lambda cpu, a, w: (~a) & ((1 << (w * 8)) - 1))

    def _op_inc(self, thread, instr) -> None:
        def fn(cpu, a, w):
            saved_cf = cpu.cf
            result = self._flags_add(cpu, a, 1, w)
            cpu.cf = saved_cf          # INC leaves CF unchanged, as on x86
            return result
        self._unop(thread, instr, fn)

    def _op_dec(self, thread, instr) -> None:
        def fn(cpu, a, w):
            saved_cf = cpu.cf
            result = self._flags_sub(cpu, a, 1, w)
            cpu.cf = saved_cf
            return result
        self._unop(thread, instr, fn)

    def _op_cmp(self, thread, instr) -> None:
        cpu = thread.cpu
        a = self._read_operand(cpu, instr.operands[0], instr.width)
        b = self._read_operand(cpu, instr.operands[1], instr.width)
        self._flags_sub(cpu, a, b, instr.width)

    def _op_test(self, thread, instr) -> None:
        cpu = thread.cpu
        a = self._read_operand(cpu, instr.operands[0], instr.width)
        b = self._read_operand(cpu, instr.operands[1], instr.width)
        self._flags_logic(cpu, a & b, instr.width)

    # -- control transfer ---------------------------------------------------

    def _branch_target(self, thread, instr) -> Tuple[int, bool]:
        """Return (target, indirect?) for a branch instruction."""
        op = instr.operands[0]
        if isinstance(op, Imm):
            return op.value & U64, False
        return self._read_operand(thread.cpu, op, 8), True

    def _notify_indirect(self, thread, instr, target: int, kind: str) -> None:
        if self.indirect_hooks:
            source = instr.address if instr.address is not None else thread.cpu.pc
            for hook in self.indirect_hooks:
                hook(self, thread, source, target, kind)

    def _op_jmp(self, thread, instr) -> None:
        target, indirect = self._branch_target(thread, instr)
        if indirect:
            self._notify_indirect(thread, instr, target, "jump")
        thread.cpu.pc = target

    def _cond(self, cpu: CpuState, mnemonic: str) -> bool:
        """Evaluate a jCC condition via its spec predicate (the same
        compiled expression the lifter derives its IR from)."""
        fn = _JCC_COND.get(mnemonic)
        if fn is None:
            raise EmulationFault(f"bad condition {mnemonic}")
        return fn(cpu)

    def _op_jcc(self, thread, instr) -> None:
        if self._cond(thread.cpu, instr.mnemonic):
            target, indirect = self._branch_target(thread, instr)
            if indirect:
                self._notify_indirect(thread, instr, target, "jump")
            thread.cpu.pc = target

    def _op_call(self, thread, instr) -> None:
        cpu = thread.cpu
        target, indirect = self._branch_target(thread, instr)
        if indirect and target < IMPORT_STUB_BASE:
            self._notify_indirect(thread, instr, target, "call")
        sp = cpu.get(RSP) - 8
        cpu.set(RSP, sp)
        self.memory.write_int(sp, cpu.pc, 8)
        cpu.pc = target

    def _op_ret(self, thread, instr) -> None:
        cpu = thread.cpu
        sp = cpu.get(RSP)
        cpu.pc = self.memory.read_int(sp, 8)
        cpu.set(RSP, sp + 8)

    # -- atomics / fences -----------------------------------------------------

    def _op_cmpxchg(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        current = self._read_operand(cpu, dst, instr.width)
        expected = cpu.get(RAX) & ((1 << (instr.width * 8)) - 1)
        self._flags_sub(cpu, expected, current, instr.width)
        if expected == current:
            new = self._read_operand(cpu, src, instr.width)
            self._write_operand(cpu, dst, new, instr.width)
        else:
            self._write_operand(cpu, Reg("rax"), current, instr.width)

    def _op_xadd(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        a = self._read_operand(cpu, dst, instr.width)
        b = self._read_operand(cpu, src, instr.width)
        result = self._flags_add(cpu, a, b, instr.width)
        self._write_operand(cpu, dst, result, instr.width)
        self._write_operand(cpu, src, a, instr.width)

    def _op_mfence(self, thread, instr) -> None:
        # TSO is never violated by this interpreter; cost + count only.
        self.fences_executed += 1

    # -- SIMD -----------------------------------------------------------------

    def _op_movdq(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        value = self._read_operand(cpu, src, 16)
        self._write_operand(cpu, dst, value, 16)

    def _vec_lanes(self, value: int) -> List[int]:
        return [(value >> (32 * i)) & 0xFFFFFFFF for i in range(4)]

    def _vec_pack(self, lanes: List[int]) -> int:
        out = 0
        for i, lane in enumerate(lanes):
            out |= (lane & 0xFFFFFFFF) << (32 * i)
        return out

    def _vecop(self, thread, instr, fn) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        a = self._vec_lanes(self._read_operand(cpu, dst, 16))
        b = self._vec_lanes(self._read_operand(cpu, src, 16))
        self._write_operand(
            cpu, dst,
            self._vec_pack([fn(x, y) & 0xFFFFFFFF for x, y in zip(a, b)]), 16)

    def _op_paddd(self, thread, instr) -> None:
        self._vecop(thread, instr, lambda a, b: a + b)

    def _op_psubd(self, thread, instr) -> None:
        self._vecop(thread, instr, lambda a, b: a - b)

    def _op_pmulld(self, thread, instr) -> None:
        self._vecop(thread, instr, lambda a, b: a * b)

    def _op_pxor(self, thread, instr) -> None:
        self._vecop(thread, instr, lambda a, b: a ^ b)

    def _op_pextrd(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src, lane = instr.operands
        lanes = self._vec_lanes(cpu.xmm[src.index])
        self._write_operand(cpu, dst, lanes[lane.value & 3], 8)

    def _op_pinsrd(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src, lane = instr.operands
        lanes = self._vec_lanes(cpu.xmm[dst.index])
        lanes[lane.value & 3] = self._read_operand(cpu, src, 4)
        cpu.xmm[dst.index] = self._vec_pack(lanes)

    def _op_pbroadcastd(self, thread, instr) -> None:
        cpu = thread.cpu
        dst, src = instr.operands
        value = self._read_operand(cpu, src, 4)
        cpu.xmm[dst.index] = self._vec_pack([value] * 4)

    # -- misc -----------------------------------------------------------------

    def _op_nop(self, thread, instr) -> None:
        pass

    def _op_hlt(self, thread, instr) -> None:
        self.exited = True
        self.exit_code = thread.cpu.get(RAX) & 0xFF

    def _op_ud2(self, thread, instr) -> None:
        raise EmulationFault("ud2 trap", thread.cpu.pc, thread.tid)

    def _op_rdtls(self, thread, instr) -> None:
        self._write_operand(thread.cpu, instr.operands[0],
                            thread.cpu.tls_base, 8)


# --- sanitizer access plans --------------------------------------------------
#
# A *plan* classifies one decoded instruction's guest memory accesses for
# the sanitizer hot path: either a sentinel (no access / fence) or
# ``(atomic, entries)`` with one ``(mem, is_read, is_write, width)`` tuple
# per memory operand.  Implicit stack accesses (push/pop/call/ret spill
# slots) are deliberately omitted: they always hit the executing thread's
# private native stack, which the detector skips anyway.

_NO_ACCESS = object()
_FENCE = object()


def _access_plan(instr: Instruction, skip_tls: bool):
    """Build the sanitizer access plan for one instruction.

    Per-operand roles ("r"/"w"/"rw") and fixed access widths come from
    the ISA spec's ``mem_roles`` / ``mem_width`` declarations.

    ``skip_tls`` elides accesses based off ``r15`` (the recompiled
    runtime's TLS/emustack base register): those target per-thread
    memory by construction.
    """
    spec = SPEC[instr.mnemonic]
    if spec.fence:
        return _FENCE
    if spec.mem_roles is None:
        return _NO_ACCESS
    entries = []
    for position, op in enumerate(instr.operands):
        if not isinstance(op, Mem):
            continue
        if skip_tls and op.base is not None and op.base.name == "r15":
            continue
        role = spec.mem_roles[position]
        width = spec.mem_width if spec.mem_width is not None else instr.width
        entries.append((op, "r" in role, "w" in role, width))
    if not entries:
        return _NO_ACCESS
    return instr.is_atomic, tuple(entries)


#: jCC mnemonic -> compiled condition predicate, from the ISA spec.
_JCC_COND = {name: spec.cond for name, spec in SPEC.items()
             if spec.branch_kind == "jcc"}


def _build_dispatch() -> Dict[str, Callable]:
    table: Dict[str, Callable] = {}
    for mnemonic, spec in SPEC.items():
        if spec.branch_kind == "jcc":
            table[mnemonic] = Machine._op_jcc
        else:
            table[mnemonic] = getattr(Machine, f"_op_{mnemonic}")
    return table


_DISPATCH = _build_dispatch()
