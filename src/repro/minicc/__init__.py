"""MiniC: the C-subset compiler that produces VXE input binaries.

MiniC exists so the reproduction has *realistic inputs*: programs with
pthread/OpenMP threading, atomic builtins, jump tables, function
pointers and genuinely different O0/O3 code shapes — the properties the
paper's recompiler is evaluated against.
"""

from typing import Optional, Tuple

from ..binfmt import Image
from .ast import Program
from .codegen import CodegenError, CodegenO0
from .codegen_opt import CodegenO3
from .lexer import LexError, tokenize
from .parser import ParseError, parse
from .sema import SemaError, SemaResult, analyze


def compile_minic(source: str, opt_level: int = 0, strip: bool = True,
                  vectorize: bool = True, name: str = "a.out") -> Image:
    """Compile MiniC source to a VXE image.

    ``opt_level`` 0 selects the stack-machine backend; 2/3 the
    optimising backend (3 additionally auto-vectorises).  ``strip``
    removes the symbol table, matching the stripped legacy binaries the
    paper targets (the disassembler then has to discover functions).
    """
    program = parse(source)
    sema = analyze(program)
    if opt_level <= 0:
        image = CodegenO0(sema).run()
    else:
        image = CodegenO3(sema, vectorize=vectorize and opt_level >= 3).run()
        image.metadata["opt_level"] = str(opt_level)
    image.metadata["name"] = name
    # Keep entry/function-start knowledge out of the symbol table if
    # stripped, but remember main for test convenience in metadata.
    if strip:
        stripped = image.stripped()
        stripped.metadata.update(image.metadata)
        return stripped
    return image


__all__ = [
    "compile_minic", "parse", "analyze", "tokenize",
    "CodegenO0", "CodegenO3", "CodegenError", "LexError", "ParseError",
    "SemaError", "SemaResult", "Program",
]
