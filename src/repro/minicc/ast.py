"""AST node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- types -------------------------------------------------------------------

@dataclass(frozen=True)
class Type:
    """A MiniC type: base kind plus pointer depth.

    ``kind`` in {"int" (i64), "int32", "char", "void"}.  ``ptr`` counts
    levels of indirection.  Arrays appear only in declarations; an array
    expression decays to a pointer to its element type.
    """

    kind: str
    ptr: int = 0

    @property
    def is_pointer(self) -> bool:
        """True for pointer types."""
        return self.ptr > 0

    @property
    def size(self) -> int:
        """Byte size of one value of this type."""
        if self.ptr > 0:
            return 8
        return {"int": 8, "int32": 4, "char": 1, "void": 0}[self.kind]

    def element(self) -> "Type":
        """The pointee type of a pointer."""
        assert self.ptr > 0
        return Type(self.kind, self.ptr - 1)

    def pointer_to(self) -> "Type":
        """The pointer type to this type."""
        return Type(self.kind, self.ptr + 1)

    def __repr__(self) -> str:
        return self.kind + "*" * self.ptr


INT = Type("int")
INT32 = Type("int32")
CHAR = Type("char")
VOID = Type("void")


# -- expressions ---------------------------------------------------------------

@dataclass
class Expr:
    """Base class of every expression node."""
    line: int = 0
    #: Filled by sema.
    type: Optional[Type] = None


@dataclass
class IntLit(Expr):
    """An integer literal."""
    value: int = 0


@dataclass
class StrLit(Expr):
    """A string literal (placed in .rodata)."""
    value: str = ""
    #: .rodata address, filled by codegen.
    address: Optional[int] = None


@dataclass
class Ident(Expr):
    """A name referencing a local, global, parameter or function."""
    name: str = ""
    #: Filled by sema: ("local", slot) / ("global", symbol) /
    #: ("param", index) / ("func", name)
    binding: Optional[tuple] = None


@dataclass
class Unary(Expr):
    """A prefix operator: - ! ~ * & ++ --."""
    op: str = ""            # - ! ~ * & ++pre --pre
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    """An infix operator, including && and || with short-circuit."""
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """Assignment expression ``target op= value`` (op may be '=')."""

    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A direct or function-pointer call."""
    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscripting ``base[index]``."""
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    """``cond ? a : b``."""
    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


@dataclass
class CastExpr(Expr):
    """An explicit C cast ``(type)expr``."""
    to: Optional[Type] = None
    operand: Optional[Expr] = None


@dataclass
class SizeofExpr(Expr):
    """``sizeof(type)``."""
    of: Optional[Type] = None


# -- statements ------------------------------------------------------------------

@dataclass
class Stmt:
    """Base class of every statement node."""
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""
    expr: Optional[Expr] = None


@dataclass
class Decl(Stmt):
    """Local variable declaration, possibly an array."""

    type: Optional[Type] = None
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    """``if``/``else``."""
    cond: Optional[Expr] = None
    then: Optional["BlockStmt"] = None
    otherwise: Optional["BlockStmt"] = None


@dataclass
class WhileStmt(Stmt):
    """``while`` loop."""
    cond: Optional[Expr] = None
    body: Optional["BlockStmt"] = None
    is_do_while: bool = False


@dataclass
class ForStmt(Stmt):
    """``for`` loop with optional init/cond/step."""
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional["BlockStmt"] = None


@dataclass
class SwitchStmt(Stmt):
    """``switch`` with constant cases and an optional default."""
    value: Optional[Expr] = None
    cases: List[Tuple[int, "BlockStmt"]] = field(default_factory=list)
    default: Optional["BlockStmt"] = None


@dataclass
class BreakStmt(Stmt):
    """``break`` out of the innermost loop or switch."""
    pass


@dataclass
class ContinueStmt(Stmt):
    """``continue`` to the innermost loop's step."""
    pass


@dataclass
class ReturnStmt(Stmt):
    """``return`` with an optional value."""
    value: Optional[Expr] = None


@dataclass
class BlockStmt(Stmt):
    """A braced statement list opening a scope."""
    body: List[Stmt] = field(default_factory=list)


# -- top level ----------------------------------------------------------------------

@dataclass
class GlobalDecl:
    """A file-scope variable, optionally initialised/array."""
    type: Type
    name: str
    array_size: Optional[int] = None
    init: Union[None, int, List[int]] = None
    line: int = 0


@dataclass
class FuncDef:
    """A function definition with parameters and a body."""
    return_type: Type
    name: str
    params: List[Tuple[Type, str]]
    body: BlockStmt
    line: int = 0


@dataclass
class Program:
    """A whole translation unit: globals plus functions."""
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
