"""Lexer for MiniC, the C subset used to author workload binaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

KEYWORDS = {
    "int", "int32", "char", "void", "if", "else", "while", "for", "do",
    "return", "break", "continue", "switch", "case", "default", "sizeof",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


@dataclass
class Token:
    """One lexical token: kind, text and source position."""
    kind: str       # 'int', 'ident', 'kw', 'op', 'str', 'char', 'eof'
    text: str
    value: int = 0
    line: int = 0


class LexError(Exception):
    """Raised on unrecognised input characters."""
    pass


def tokenize(source: str) -> List[Token]:
    """Split MiniC source into a token list (comments stripped)."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", source[i:j], value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            out = []
            while j < n and source[j] != '"':
                out.append(_escape(source, j))
                j += 2 if source[j] == "\\" else 1
            if j >= n:
                raise LexError(f"line {line}: unterminated string")
            tokens.append(Token("str", "".join(out), 0, line))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            if j >= n:
                raise LexError(f"line {line}: unterminated char literal")
            literal = _escape(source, j)
            j += 2 if source[j] == "\\" else 1
            if j >= n or source[j] != "'":
                raise LexError(f"line {line}: unterminated char literal")
            tokens.append(Token("char", literal, ord(literal), line))
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, 0, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", 0, line))
    return tokens


def _escape(source: str, index: int) -> str:
    ch = source[index]
    if ch != "\\":
        return ch
    nxt = source[index + 1]
    return {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}.get(nxt, nxt)
