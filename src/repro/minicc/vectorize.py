"""Auto-vectorisation of simple MiniC loops (O3 only).

Recognises two shapes over ``int32`` arrays with a unit-stride
induction variable:

* elementwise:  ``for (i = s; i < n; i += 1) d[i] = a[i] OP b[i];``
  with OP in ``+ - * ^``;
* reduction:    ``for (i = s; i < n; i += 1) acc += a[i];`` or
  ``acc += a[i] * b[i];``

and emits a 4-lane SIMD main loop plus a scalar tail.  The lifted IR
must later scalarise these packed instructions lane by lane (QEMU-
helper style), which is what produces the paper's large slowdown on
*linear_regression* (Table 2).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..isa import Imm, Label, Mem, Reg, ins
from .ast import (Assign, Binary, BlockStmt, Call, Decl, Expr, ExprStmt,
                  ForStmt, Ident, Index, IntLit)

_VECTOR_OPS = {"+": "paddd", "-": "psubd", "*": "pmulld", "^": "pxor"}


def _contains_call(expr) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Call):
        return True
    for attr in ("operand", "left", "right", "target", "value", "base",
                 "index", "cond", "if_true", "if_false"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _contains_call(child):
            return True
    return False


def _induction_var(cg, stmt: ForStmt) -> Optional[str]:
    """Return the loop-variable key ('local:name') if the loop has the
    canonical ``for (i = ...; i < bound; i += 1)`` shape with ``i`` in a
    register."""
    # step must be i += 1 (or i = i + 1, which the parser desugars).
    step = stmt.step
    if not (isinstance(step, Assign) and isinstance(step.target, Ident)
            and step.target.binding and step.target.binding[0] == "local"):
        return None
    if step.op == "+=" and isinstance(step.value, IntLit) \
            and step.value.value == 1:
        pass
    elif step.op == "=" and isinstance(step.value, Binary) \
            and step.value.op == "+" \
            and isinstance(step.value.left, Ident) \
            and step.value.left.binding == step.target.binding \
            and isinstance(step.value.right, IntLit) \
            and step.value.right.value == 1:
        pass
    else:
        return None
    name = step.target.binding[1]
    key = f"local:{name}"
    if key not in cg.reg_locals:
        return None
    cond = stmt.cond
    if not (isinstance(cond, Binary) and cond.op == "<"
            and isinstance(cond.left, Ident)
            and cond.left.binding == step.target.binding):
        return None
    if _contains_call(cond.right):
        return None
    return name


def _array_operand(cg, expr: Expr, ivar_name: str,
                   index_reg: Reg) -> Optional[Mem]:
    """Memory operand for ``arr[i]`` when arr is a global int32 array or
    an int32* in a register home."""
    if not isinstance(expr, Index):
        return None
    if not (isinstance(expr.index, Ident) and expr.index.binding
            and expr.index.binding[0] == "local"
            and expr.index.binding[1] == ivar_name):
        return None
    base = expr.base
    if not isinstance(base, Ident) or base.type is None \
            or not base.type.is_pointer or base.type.element().size != 4:
        return None
    binding = base.binding
    if binding[0] == "global":
        decl = cg.sema.globals[binding[1]]
        if decl.array_size is None:
            return None
        return Mem(index=index_reg, scale=4,
                   disp=cg.global_addrs[binding[1]])
    if binding[0] in ("local", "param"):
        home = cg._ident_home(base)
        if isinstance(home, Reg):
            return Mem(base=home, index=index_reg, scale=4)
    return None


def try_vectorize_for(cg, stmt: ForStmt) -> bool:
    """Attempt to emit a vectorised loop; returns False to fall back."""
    if len(stmt.body.body) != 1 or not isinstance(stmt.body.body[0],
                                                  ExprStmt):
        return False
    body_expr = stmt.body.body[0].expr
    if _contains_call(body_expr):
        return False
    ivar = _induction_var(cg, stmt)
    if ivar is None:
        return False
    i_reg = cg.reg_locals[f"local:{ivar}"]

    plan = _match_elementwise(cg, body_expr, ivar, i_reg) \
        or _match_reduction(cg, body_expr, ivar, i_reg)
    if plan is None:
        return False
    kind = plan[0]

    asm = cg.asm
    # Loop setup: run the init statement normally, evaluate the bound
    # once into a scratch register that stays live for the whole loop.
    if stmt.init is not None:
        cg.gen_stmt(stmt.init)
    bound_reg = cg.acquire()
    cg.gen_expr(stmt.cond.right, bound_reg)

    vec_head = cg.new_label("vec")
    tail_head = cg.new_label("vtail")
    tail_loop = cg.new_label("vtloop")
    end = cg.new_label("vend")
    limit_reg = cg.acquire()

    if kind == "reduction":
        asm.emit(ins("pxor", Reg("xmm0"), Reg("xmm0"), width=16))

    asm.label(vec_head)
    asm.emit(ins("mov", limit_reg, i_reg))
    asm.emit(ins("add", limit_reg, Imm(4)))
    asm.emit(ins("cmp", limit_reg, bound_reg))
    asm.emit(ins("jg", Label(tail_head)))

    if kind == "elementwise":
        _, dst_mem, a_mem, b_mem, vop = plan
        asm.emit(ins("movdq", Reg("xmm1"), a_mem, width=16))
        asm.emit(ins("movdq", Reg("xmm2"), b_mem, width=16))
        asm.emit(ins(vop, Reg("xmm1"), Reg("xmm2"), width=16))
        asm.emit(ins("movdq", dst_mem, Reg("xmm1"), width=16))
    else:
        _, acc_home, a_mem, b_mem = plan
        asm.emit(ins("movdq", Reg("xmm1"), a_mem, width=16))
        if b_mem is not None:
            asm.emit(ins("movdq", Reg("xmm2"), b_mem, width=16))
            asm.emit(ins("pmulld", Reg("xmm1"), Reg("xmm2"), width=16))
        asm.emit(ins("paddd", Reg("xmm0"), Reg("xmm1"), width=16))

    asm.emit(ins("add", i_reg, Imm(4)))
    asm.emit(ins("jmp", Label(vec_head)))

    asm.label(tail_head)
    if kind == "reduction":
        _, acc_home, a_mem, b_mem = plan
        # Horizontal sum of the 4 lanes (sign-extended) into the scalar
        # accumulator.
        lane_reg = limit_reg
        for lane in range(4):
            asm.emit(ins("pextrd", lane_reg, Reg("xmm0"), Imm(lane)))
            asm.emit(ins("movsx", lane_reg, lane_reg, width=4))
            if isinstance(acc_home, Reg):
                asm.emit(ins("add", acc_home, lane_reg))
            else:
                asm.emit(ins("add", acc_home, lane_reg))

    # Scalar tail loop for the remaining 0-3 iterations.
    asm.label(tail_loop)
    asm.emit(ins("cmp", i_reg, bound_reg))
    asm.emit(ins("jge", Label(end)))
    cg.gen_expr_discard(body_expr)
    asm.emit(ins("add", i_reg, Imm(1)))
    asm.emit(ins("jmp", Label(tail_loop)))
    asm.label(end)
    cg.release(limit_reg)
    cg.release(bound_reg)
    return True


def _match_elementwise(cg, expr, ivar: str, i_reg: Reg):
    if not (isinstance(expr, Assign) and expr.op == "="
            and isinstance(expr.target, Index)
            and isinstance(expr.value, Binary)
            and expr.value.op in _VECTOR_OPS):
        return None
    dst = _array_operand(cg, expr.target, ivar, i_reg)
    a = _array_operand(cg, expr.value.left, ivar, i_reg)
    b = _array_operand(cg, expr.value.right, ivar, i_reg)
    if dst is None or a is None or b is None:
        return None
    return ("elementwise", dst, a, b, _VECTOR_OPS[expr.value.op])


def _match_reduction(cg, expr, ivar: str, i_reg: Reg):
    if not (isinstance(expr, Assign) and expr.op == "+="
            and isinstance(expr.target, Ident)
            and expr.target.binding
            and expr.target.binding[0] in ("local", "param")):
        return None
    acc_home = cg._ident_home(expr.target)
    if not isinstance(acc_home, Reg):
        return None
    value = expr.value
    if isinstance(value, Index):
        a = _array_operand(cg, value, ivar, i_reg)
        if a is None:
            return None
        return ("reduction", acc_home, a, None)
    if isinstance(value, Binary) and value.op == "*":
        a = _array_operand(cg, value.left, ivar, i_reg)
        b = _array_operand(cg, value.right, ivar, i_reg)
        if a is None or b is None:
            return None
        return ("reduction", acc_home, a, b)
    return None
