"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (Assign, Binary, BlockStmt, BreakStmt, Call, CastExpr,
                  ContinueStmt, Decl, Expr, ExprStmt, ForStmt, FuncDef,
                  GlobalDecl, Ident, IfStmt, Index, IntLit, Program,
                  ReturnStmt, SizeofExpr, StrLit, SwitchStmt, Ternary, Type,
                  Unary, WhileStmt)
from .lexer import Token, tokenize

TYPE_KEYWORDS = ("int", "int32", "char", "void")

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")


class ParseError(Exception):
    """Raised on syntax errors, with line/column context."""
    pass


class Parser:
    """Recursive-descent parser producing the MiniC AST."""
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def tok(self) -> Token:
        """The current (unconsumed) token."""
        return self.tokens[self.pos]

    def advance(self) -> Token:
        """Consume and return the current token."""
        tok = self.tok
        self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        """True if the current token matches kind (and text)."""
        tok = self.tok
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the current token if it matches, else None."""
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a required token or raise ParseError."""
        if not self.check(kind, text):
            raise ParseError(
                f"line {self.tok.line}: expected {text or kind}, "
                f"got {self.tok.text!r}")
        return self.advance()

    def _at_type(self) -> bool:
        return self.tok.kind == "kw" and self.tok.text in TYPE_KEYWORDS

    # -- top level ----------------------------------------------------------------

    def parse(self) -> Program:
        """Parse a whole translation unit."""
        program = Program()
        while not self.check("eof"):
            base = self._parse_type()
            ptr = 0
            while self.accept("op", "*"):
                ptr += 1
            name = self.expect("ident").text
            decl_type = Type(base.kind, ptr)
            if self.check("op", "("):
                program.functions.append(
                    self._parse_function(decl_type, name))
            else:
                program.globals.extend(
                    self._parse_global(decl_type, name))
        return program

    def _parse_type(self) -> Type:
        tok = self.expect("kw")
        if tok.text not in TYPE_KEYWORDS:
            raise ParseError(f"line {tok.line}: expected type, got {tok.text}")
        return Type(tok.text)

    def _parse_global(self, decl_type: Type, name: str) -> List[GlobalDecl]:
        decls = []
        while True:
            array_size = None
            init = None
            if self.accept("op", "["):
                array_size = self._const_int()
                self.expect("op", "]")
            if self.accept("op", "="):
                if self.accept("op", "{"):
                    values = []
                    while not self.check("op", "}"):
                        values.append(self._const_int())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", "}")
                    init = values
                else:
                    init = self._const_int()
            decls.append(GlobalDecl(decl_type, name, array_size, init,
                                    self.tok.line))
            if not self.accept("op", ","):
                break
            ptr = 0
            while self.accept("op", "*"):
                ptr += 1
            decl_type = Type(decl_type.kind, ptr)
            name = self.expect("ident").text
        self.expect("op", ";")
        return decls

    def _const_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        tok = self.tok
        if tok.kind in ("int", "char"):
            self.advance()
            return -tok.value if negative else tok.value
        raise ParseError(f"line {tok.line}: expected constant")

    def _parse_function(self, return_type: Type, name: str) -> FuncDef:
        line = self.tok.line
        self.expect("op", "(")
        params: List[Tuple[Type, str]] = []
        if not self.check("op", ")"):
            if self.check("kw", "void") and \
                    self.tokens[self.pos + 1].text == ")":
                self.advance()
            else:
                while True:
                    base = self._parse_type()
                    ptr = 0
                    while self.accept("op", "*"):
                        ptr += 1
                    pname = self.expect("ident").text
                    params.append((Type(base.kind, ptr), pname))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        body = self._parse_block()
        return FuncDef(return_type, name, params, body, line)

    # -- statements ------------------------------------------------------------------

    def _parse_block(self) -> BlockStmt:
        line = self.expect("op", "{").line
        body: List = []
        while not self.check("op", "}"):
            body.append(self._parse_statement())
        self.expect("op", "}")
        return BlockStmt(line=line, body=body)

    def _parse_statement(self):
        tok = self.tok
        if self.check("op", "{"):
            return self._parse_block()
        if self._at_type():
            return self._parse_decl()
        if self.check("kw", "if"):
            return self._parse_if()
        if self.check("kw", "while"):
            return self._parse_while()
        if self.check("kw", "do"):
            return self._parse_do_while()
        if self.check("kw", "for"):
            return self._parse_for()
        if self.check("kw", "switch"):
            return self._parse_switch()
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return BreakStmt(line=tok.line)
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return ContinueStmt(line=tok.line)
        if self.accept("kw", "return"):
            value = None
            if not self.check("op", ";"):
                value = self._parse_expr()
            self.expect("op", ";")
            return ReturnStmt(line=tok.line, value=value)
        if self.accept("op", ";"):
            return BlockStmt(line=tok.line, body=[])
        expr = self._parse_expr()
        self.expect("op", ";")
        return ExprStmt(line=tok.line, expr=expr)

    def _parse_decl(self) -> Decl:
        line = self.tok.line
        base = self._parse_type()
        ptr = 0
        while self.accept("op", "*"):
            ptr += 1
        name = self.expect("ident").text
        array_size = None
        if self.accept("op", "["):
            array_size = self._const_int()
            self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            init = self._parse_expr()
        self.expect("op", ";")
        return Decl(line=line, type=Type(base.kind, ptr), name=name,
                    array_size=array_size, init=init)

    def _parse_if(self) -> IfStmt:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        then = self._statement_as_block()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self._statement_as_block()
        return IfStmt(line=line, cond=cond, then=then, otherwise=otherwise)

    def _statement_as_block(self) -> BlockStmt:
        stmt = self._parse_statement()
        if isinstance(stmt, BlockStmt):
            return stmt
        return BlockStmt(line=stmt.line, body=[stmt])

    def _parse_while(self) -> WhileStmt:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        body = self._statement_as_block()
        return WhileStmt(line=line, cond=cond, body=body)

    def _parse_do_while(self) -> WhileStmt:
        line = self.expect("kw", "do").line
        body = self._statement_as_block()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return WhileStmt(line=line, cond=cond, body=body, is_do_while=True)

    def _parse_for(self) -> ForStmt:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self._at_type():
                init = self._parse_decl()
            else:
                expr = self._parse_expr()
                self.expect("op", ";")
                init = ExprStmt(line=line, expr=expr)
        else:
            self.advance()
        cond = None
        if not self.check("op", ";"):
            cond = self._parse_expr()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._parse_expr()
        self.expect("op", ")")
        body = self._statement_as_block()
        return ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    def _parse_switch(self) -> SwitchStmt:
        line = self.expect("kw", "switch").line
        self.expect("op", "(")
        value = self._parse_expr()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[Tuple[int, BlockStmt]] = []
        default = None
        while not self.check("op", "}"):
            if self.accept("kw", "case"):
                case_value = self._const_int()
                self.expect("op", ":")
                body = self._parse_case_body()
                cases.append((case_value, body))
            elif self.accept("kw", "default"):
                self.expect("op", ":")
                default = self._parse_case_body()
            else:
                raise ParseError(
                    f"line {self.tok.line}: expected case/default")
        self.expect("op", "}")
        return SwitchStmt(line=line, value=value, cases=cases,
                          default=default)

    def _parse_case_body(self) -> BlockStmt:
        """Statements until the next case/default/closing brace.

        MiniC switch cases implicitly break (no fallthrough); an
        explicit ``break;`` is accepted and ends the case.
        """
        line = self.tok.line
        body: List = []
        while not (self.check("kw", "case") or self.check("kw", "default")
                   or self.check("op", "}")):
            if self.check("kw", "break"):
                self.advance()
                self.expect("op", ";")
                break
            body.append(self._parse_statement())
        return BlockStmt(line=line, body=body)

    # -- expressions -------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_ternary()
        if self.tok.kind == "op" and self.tok.text in _ASSIGN_OPS:
            op = self.advance().text
            value = self._parse_assignment()
            return Assign(line=left.line, op=op, target=left, value=value)
        return left

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            if_true = self._parse_expr()
            self.expect("op", ":")
            if_false = self._parse_ternary()
            return Ternary(line=cond.line, cond=cond, if_true=if_true,
                           if_false=if_false)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while self.tok.kind == "op" and \
                _PRECEDENCE.get(self.tok.text, 0) >= min_prec:
            op = self.advance().text
            right = self._parse_binary(_PRECEDENCE[op] + 1)
            left = Binary(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        tok = self.tok
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return Unary(line=tok.line, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            operand = self._parse_unary()
            # ++x desugars to (x += 1).
            return Assign(line=tok.line,
                          op="+=" if tok.text == "++" else "-=",
                          target=operand, value=IntLit(line=tok.line, value=1))
        if tok.kind == "op" and tok.text == "(":
            # Cast or parenthesised expression.
            if self.tokens[self.pos + 1].kind == "kw" and \
                    self.tokens[self.pos + 1].text in TYPE_KEYWORDS:
                self.advance()
                base = self._parse_type()
                ptr = 0
                while self.accept("op", "*"):
                    ptr += 1
                self.expect("op", ")")
                operand = self._parse_unary()
                return CastExpr(line=tok.line, to=Type(base.kind, ptr),
                                operand=operand)
        if self.accept("kw", "sizeof"):
            self.expect("op", "(")
            base = self._parse_type()
            ptr = 0
            while self.accept("op", "*"):
                ptr += 1
            self.expect("op", ")")
            return SizeofExpr(line=tok.line, of=Type(base.kind, ptr))
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("op", "["):
                index = self._parse_expr()
                self.expect("op", "]")
                expr = Index(line=expr.line, base=expr, index=index)
            elif self.accept("op", "("):
                args: List[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = Call(line=expr.line, callee=expr, args=args)
            elif self.tok.kind == "op" and self.tok.text in ("++", "--"):
                # Postfix inc/dec is only supported as a statement-level
                # expression; desugar to compound assignment.
                op = self.advance().text
                expr = Assign(line=expr.line,
                              op="+=" if op == "++" else "-=",
                              target=expr,
                              value=IntLit(line=expr.line, value=1))
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self.tok
        if tok.kind == "int" or tok.kind == "char":
            self.advance()
            return IntLit(line=tok.line, value=tok.value)
        if tok.kind == "str":
            self.advance()
            return StrLit(line=tok.line, value=tok.text)
        if tok.kind == "ident":
            self.advance()
            return Ident(line=tok.line, name=tok.text)
        if self.accept("op", "("):
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> Program:
    """Convenience wrapper: source text -> Program AST."""
    return Parser(source).parse()
