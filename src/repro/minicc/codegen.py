"""MiniC code generation, shared infrastructure + the O0 backend.

The O0 backend is a classic stack machine: every value travels through
``rax``, temporaries are pushed/popped, all locals live in the stack
frame, booleans are materialised with branches.  This produces exactly
the kind of redundant memory traffic that real ``gcc -O0`` output has —
which the paper's recompiler is then able to *out-optimise* (Table 2's
O0 speedups).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt import Image
from ..isa import (ARG_REGS, Assembler, Imm, Instruction, Label, Mem, Reg,
                   ins, RAX, RBP, RCX, RDX, RSP)
from .ast import (Assign, Binary, BlockStmt, BreakStmt, Call, CastExpr,
                  ContinueStmt, Decl, Expr, ExprStmt, ForStmt, FuncDef,
                  Ident, IfStmt, Index, IntLit, Program, ReturnStmt,
                  SizeofExpr, StrLit, SwitchStmt, Ternary, Type, Unary,
                  WhileStmt)
from .sema import ATOMIC_BUILTINS, SemaResult

TEXT_BASE = 0x400000
RODATA_BASE = 0x680000
DATA_BASE = 0x700000

_CMP_JCC = {"==": "je", "!=": "jne", "<": "jl", "<=": "jle",
            ">": "jg", ">=": "jge"}
_CMP_INVERSE = {"==": "jne", "!=": "je", "<": "jge", "<=": "jg",
                ">": "jle", ">=": "jl"}
_ARITH_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
              "<<": "shl", ">>": "sar", "*": "imul", "/": "idiv",
              "%": "irem"}


class CodegenError(Exception):
    """Raised for constructs the code generator does not support."""
    pass


class CodegenBase:
    """Shared layout and helpers for both backends."""

    def __init__(self, sema: SemaResult, opt_level: int = 0) -> None:
        self.sema = sema
        self.opt_level = opt_level
        self.asm = Assembler(base=TEXT_BASE)
        self.image = Image()
        self.global_addrs: Dict[str, int] = {}
        self.string_addrs: Dict[str, int] = {}
        self._label_counter = 0
        self._layout_data()

    # -- data layout --------------------------------------------------------

    def _layout_data(self) -> None:
        rodata = bytearray()
        for text in self.sema.strings:
            self.string_addrs[text] = RODATA_BASE + len(rodata)
            rodata += text.encode("latin1") + b"\x00"
        self._rodata = bytes(rodata)

        data = bytearray()
        for name, decl in self.sema.globals.items():
            # Natural alignment preserves the ISA atomicity guarantees
            # for naturally-aligned loads/stores (§3.3.1).
            align = min(decl.type.size if decl.array_size is None else
                        decl.type.size, 8) or 1
            while len(data) % max(align, 8):
                data.append(0)
            self.global_addrs[name] = DATA_BASE + len(data)
            size = decl.type.size * (decl.array_size or 1)
            blob = bytearray(size)
            if isinstance(decl.init, int):
                blob[:decl.type.size] = (decl.init & (1 << (8 * decl.type.size)) - 1) \
                    .to_bytes(decl.type.size, "little")
            elif isinstance(decl.init, list):
                esize = decl.type.size
                for i, value in enumerate(decl.init):
                    blob[i * esize:(i + 1) * esize] = \
                        (value & ((1 << (8 * esize)) - 1)).to_bytes(esize, "little")
            data += blob
        self._data = bytes(data)

    def new_label(self, stem: str) -> str:
        """A fresh unique assembler label with the given stem."""
        self._label_counter += 1
        return f".{stem}_{self._label_counter}"

    def import_call(self, name: str) -> Instruction:
        """A call instruction through the named import's stub."""
        return ins("call", Imm(self.image.import_slot(name)))

    # -- finalisation --------------------------------------------------------------

    def finish(self, entry_func: str = "main") -> Image:
        """Assemble sections, wire the entry point and build the Image."""
        code = self.asm.assemble()
        self.image.add_section(".text", code.base, code.data, executable=True)
        if self._rodata:
            self.image.add_section(".rodata", RODATA_BASE, self._rodata)
        if self._data:
            self.image.add_section(".data", DATA_BASE, self._data,
                                   writable=True)
        for name, addr in code.symbols.items():
            if name.startswith("fn_"):
                self.image.symbols[name[3:]] = addr
        entry = f"fn_{entry_func}"
        if entry not in code.symbols:
            raise CodegenError(f"no entry function {entry_func!r}")
        self.image.entry = code.symbols[entry]
        self.image.metadata["opt_level"] = str(self.opt_level)
        return self.image


class CodegenO0(CodegenBase):
    """Unoptimised stack-machine backend."""

    def __init__(self, sema: SemaResult) -> None:
        super().__init__(sema, opt_level=0)
        self.current: Optional[FuncDef] = None
        self.local_offsets: Dict[str, int] = {}
        self.frame_size = 0
        self.break_labels: List[str] = []
        self.continue_labels: List[str] = []
        self.epilogue_label = ""

    def run(self) -> Image:
        """Generate the whole program and return its VXE image."""
        for func in self.sema.program.functions:
            self.gen_function(func)
        return self.finish()

    # -- functions -------------------------------------------------------------

    def gen_function(self, func: FuncDef) -> None:
        """Emit one function: prologue, body, epilogue."""
        if len(func.params) > len(ARG_REGS):
            raise CodegenError(
                f"{func.name}: {len(func.params)} parameters "
                f"(max {len(ARG_REGS)})")
        self.current = func
        info = self.sema.functions[func.name]
        self.local_offsets = {}
        offset = 0
        for name, var in info.locals.items():
            offset += (var.storage_size + 7) & ~7
            self.local_offsets[name] = -offset
        for index, (ptype, pname) in enumerate(func.params):
            offset += 8
            self.local_offsets[f"__param{index}"] = -offset
        self.frame_size = (offset + 15) & ~15
        self.epilogue_label = self.new_label(f"epi_{func.name}")

        asm = self.asm
        asm.align(8)
        asm.label(f"fn_{func.name}")
        asm.emit(ins("push", Reg("rbp")))
        asm.emit(ins("mov", Reg("rbp"), Reg("rsp")))
        if self.frame_size:
            asm.emit(ins("sub", Reg("rsp"), Imm(self.frame_size)))
        for index in range(len(func.params)):
            asm.emit(ins("mov",
                         Mem(base=Reg("rbp"),
                             disp=self.local_offsets[f"__param{index}"]),
                         ARG_REGS[index]))
        self.gen_block(func.body)
        # Implicit `return 0` fallthrough.
        asm.emit(ins("mov", Reg("rax"), Imm(0)))
        asm.label(self.epilogue_label)
        asm.emit(ins("mov", Reg("rsp"), Reg("rbp")))
        asm.emit(ins("pop", Reg("rbp")))
        asm.emit(ins("ret"))

    # -- statements ----------------------------------------------------------------

    def gen_block(self, block: BlockStmt) -> None:
        """Emit a braced block, opening and closing its scope."""
        for stmt in block.body:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        """Emit one statement."""
        asm = self.asm
        if isinstance(stmt, BlockStmt):
            self.gen_block(stmt)
        elif isinstance(stmt, Decl):
            if stmt.init is not None:
                self.gen_expr(stmt.init)
                var = self.sema.functions[self.current.name].locals[stmt.name]
                asm.emit(ins("mov",
                             Mem(base=Reg("rbp"),
                                 disp=self.local_offsets[stmt.name]),
                             Reg("rax"), width=var.type.size
                             if var.array_size is None else 8))
        elif isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            else_label = self.new_label("else")
            end_label = self.new_label("endif")
            self.gen_cond_branch(stmt.cond, false_label=else_label)
            self.gen_block(stmt.then)
            if stmt.otherwise is not None:
                asm.emit(ins("jmp", Label(end_label)))
                asm.label(else_label)
                self.gen_block(stmt.otherwise)
                asm.label(end_label)
            else:
                asm.label(else_label)
        elif isinstance(stmt, WhileStmt):
            head = self.new_label("while")
            end = self.new_label("wend")
            self.break_labels.append(end)
            self.continue_labels.append(head)
            if stmt.is_do_while:
                body_label = self.new_label("dobody")
                asm.label(body_label)
                self.gen_block(stmt.body)
                asm.label(head)
                self.gen_cond_branch(stmt.cond, true_label=body_label)
            else:
                asm.label(head)
                self.gen_cond_branch(stmt.cond, false_label=end)
                self.gen_block(stmt.body)
                asm.emit(ins("jmp", Label(head)))
            asm.label(end)
            self.break_labels.pop()
            self.continue_labels.pop()
        elif isinstance(stmt, ForStmt):
            head = self.new_label("for")
            step_label = self.new_label("fstep")
            end = self.new_label("fend")
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            asm.label(head)
            if stmt.cond is not None:
                self.gen_cond_branch(stmt.cond, false_label=end)
            self.break_labels.append(end)
            self.continue_labels.append(step_label)
            self.gen_block(stmt.body)
            asm.label(step_label)
            if stmt.step is not None:
                self.gen_expr(stmt.step)
            asm.emit(ins("jmp", Label(head)))
            asm.label(end)
            self.break_labels.pop()
            self.continue_labels.pop()
        elif isinstance(stmt, SwitchStmt):
            self.gen_switch(stmt)
        elif isinstance(stmt, BreakStmt):
            asm.emit(ins("jmp", Label(self.break_labels[-1])))
        elif isinstance(stmt, ContinueStmt):
            asm.emit(ins("jmp", Label(self.continue_labels[-1])))
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self.gen_expr(stmt.value)
            else:
                asm.emit(ins("mov", Reg("rax"), Imm(0)))
            asm.emit(ins("jmp", Label(self.epilogue_label)))
        else:
            raise CodegenError(f"unsupported statement {stmt!r}")

    def gen_switch(self, stmt: SwitchStmt) -> None:
        """O0 lowers switch to a compare chain (no jump table)."""
        asm = self.asm
        end = self.new_label("swend")
        self.gen_expr(stmt.value)
        case_labels = [self.new_label("case") for _ in stmt.cases]
        default_label = self.new_label("swdef")
        for (value, _), label in zip(stmt.cases, case_labels):
            asm.emit(ins("cmp", Reg("rax"), Imm(value)))
            asm.emit(ins("je", Label(label)))
        asm.emit(ins("jmp", Label(default_label)))
        self.break_labels.append(end)
        for (_, body), label in zip(stmt.cases, case_labels):
            asm.label(label)
            self.gen_block(body)
            asm.emit(ins("jmp", Label(end)))
        asm.label(default_label)
        if stmt.default is not None:
            self.gen_block(stmt.default)
        self.break_labels.pop()
        asm.label(end)

    # -- conditions -------------------------------------------------------------------

    def gen_cond_branch(self, cond: Expr,
                        true_label: Optional[str] = None,
                        false_label: Optional[str] = None) -> None:
        """Branch on a condition without materialising a boolean."""
        asm = self.asm
        if isinstance(cond, Binary) and cond.op in _CMP_JCC:
            self.gen_expr(cond.left)
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(cond.right)
            asm.emit(ins("mov", Reg("rcx"), Reg("rax")))
            asm.emit(ins("pop", Reg("rax")))
            asm.emit(ins("cmp", Reg("rax"), Reg("rcx")))
            if true_label is not None:
                asm.emit(ins(_CMP_JCC[cond.op], Label(true_label)))
            if false_label is not None:
                asm.emit(ins(_CMP_INVERSE[cond.op], Label(false_label)))
            return
        if isinstance(cond, Binary) and cond.op == "&&":
            if false_label is not None:
                self.gen_cond_branch(cond.left, false_label=false_label)
                self.gen_cond_branch(cond.right, true_label=true_label,
                                     false_label=false_label)
            else:
                skip = self.new_label("andskip")
                self.gen_cond_branch(cond.left, false_label=skip)
                self.gen_cond_branch(cond.right, true_label=true_label)
                asm.label(skip)
            return
        if isinstance(cond, Binary) and cond.op == "||":
            if true_label is not None:
                self.gen_cond_branch(cond.left, true_label=true_label)
                self.gen_cond_branch(cond.right, true_label=true_label,
                                     false_label=false_label)
            else:
                skip = self.new_label("orskip")
                self.gen_cond_branch(cond.left, true_label=skip)
                self.gen_cond_branch(cond.right, false_label=false_label)
                asm.label(skip)
            return
        if isinstance(cond, Unary) and cond.op == "!":
            self.gen_cond_branch(cond.operand, true_label=false_label,
                                 false_label=true_label)
            return
        self.gen_expr(cond)
        asm.emit(ins("test", Reg("rax"), Reg("rax")))
        if true_label is not None:
            asm.emit(ins("jne", Label(true_label)))
        if false_label is not None:
            asm.emit(ins("je", Label(false_label)))

    # -- expressions ------------------------------------------------------------------

    def gen_expr(self, expr: Expr) -> None:
        """Evaluate ``expr`` into rax."""
        asm = self.asm
        if isinstance(expr, IntLit):
            asm.emit(ins("mov", Reg("rax"), Imm(expr.value)))
        elif isinstance(expr, StrLit):
            asm.emit(ins("mov", Reg("rax"),
                         Imm(self.string_addrs[expr.value])))
        elif isinstance(expr, SizeofExpr):
            asm.emit(ins("mov", Reg("rax"), Imm(expr.of.size)))
        elif isinstance(expr, Ident):
            self.gen_ident_load(expr)
        elif isinstance(expr, Unary):
            self.gen_unary(expr)
        elif isinstance(expr, Binary):
            self.gen_binary(expr)
        elif isinstance(expr, Assign):
            self.gen_assign(expr)
        elif isinstance(expr, Call):
            self.gen_call(expr)
        elif isinstance(expr, Index):
            self.gen_lvalue_address(expr)
            width = expr.type.size if not expr.type.is_pointer else 8
            self.gen_load_from_rax(expr.type, width)
        elif isinstance(expr, Ternary):
            else_label = self.new_label("telse")
            end_label = self.new_label("tend")
            self.gen_cond_branch(expr.cond, false_label=else_label)
            self.gen_expr(expr.if_true)
            asm.emit(ins("jmp", Label(end_label)))
            asm.label(else_label)
            self.gen_expr(expr.if_false)
            asm.label(end_label)
        elif isinstance(expr, CastExpr):
            self.gen_expr(expr.operand)
            if not expr.to.is_pointer and expr.to.size < 8:
                if expr.to.size == 4:
                    asm.emit(ins("movsx", Reg("rax"), Reg("rax"), width=4))
                else:
                    asm.emit(ins("and", Reg("rax"),
                                 Imm((1 << (8 * expr.to.size)) - 1)))
        else:
            raise CodegenError(f"unsupported expression {expr!r}")

    def gen_load_from_rax(self, type_: Type, width: int) -> None:
        """rax = *[rax] with the access width of ``type_``."""
        asm = self.asm
        if width == 8 or type_.is_pointer:
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rax")), width=8))
        elif type_.kind == "int32":
            asm.emit(ins("movsx", Reg("rax"), Mem(base=Reg("rax")), width=4))
        else:
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rax")),
                         width=width))

    def gen_ident_load(self, expr: Ident) -> None:
        """Push an identifier's value (or address for arrays/functions)."""
        asm = self.asm
        kind = expr.binding[0]
        if kind == "func":
            asm.emit(ins("mov", Reg("rax"), Label(f"fn_{expr.binding[1]}")))
            return
        info = self.sema.functions[self.current.name]
        if kind == "local":
            var = info.locals[expr.binding[1]]
            disp = self.local_offsets[expr.binding[1]]
            if var.array_size is not None:
                asm.emit(ins("lea", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp)))
            elif var.type.is_pointer or var.type.size == 8:
                asm.emit(ins("mov", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp)))
            elif var.type.kind == "int32":
                asm.emit(ins("movsx", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp), width=4))
            else:
                asm.emit(ins("mov", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp),
                             width=var.type.size))
        elif kind == "param":
            disp = self.local_offsets[f"__param{expr.binding[1]}"]
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rbp"), disp=disp)))
        elif kind == "global":
            decl = self.sema.globals[expr.binding[1]]
            addr = self.global_addrs[expr.binding[1]]
            if decl.array_size is not None:
                asm.emit(ins("mov", Reg("rax"), Imm(addr)))
            elif decl.type.is_pointer or decl.type.size == 8:
                asm.emit(ins("mov", Reg("rax"), Mem(disp=addr)))
            elif decl.type.kind == "int32":
                asm.emit(ins("movsx", Reg("rax"), Mem(disp=addr), width=4))
            else:
                asm.emit(ins("mov", Reg("rax"), Mem(disp=addr),
                             width=decl.type.size))
        else:
            raise CodegenError(f"cannot load {expr.binding}")

    def gen_lvalue_address(self, expr: Expr) -> None:
        """Evaluate the address of an lvalue into rax."""
        asm = self.asm
        if isinstance(expr, Ident):
            kind = expr.binding[0]
            if kind == "local":
                disp = self.local_offsets[expr.binding[1]]
                asm.emit(ins("lea", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp)))
            elif kind == "param":
                disp = self.local_offsets[f"__param{expr.binding[1]}"]
                asm.emit(ins("lea", Reg("rax"),
                             Mem(base=Reg("rbp"), disp=disp)))
            elif kind == "global":
                asm.emit(ins("mov", Reg("rax"),
                             Imm(self.global_addrs[expr.binding[1]])))
            else:
                raise CodegenError(f"cannot take address of {expr.binding}")
            return
        if isinstance(expr, Unary) and expr.op == "*":
            self.gen_expr(expr.operand)
            return
        if isinstance(expr, Index):
            self.gen_expr(expr.base)
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.index)
            elem = expr.base.type.element()
            if elem.size > 1:
                asm.emit(ins("imul", Reg("rax"), Imm(elem.size)))
            asm.emit(ins("pop", Reg("rcx")))
            asm.emit(ins("add", Reg("rax"), Reg("rcx")))
            return
        raise CodegenError(f"not an lvalue: {expr!r}")

    def _lvalue_width(self, target: Expr) -> int:
        if target.type is None:
            return 8
        if target.type.is_pointer:
            return 8
        return target.type.size

    def gen_assign(self, expr: Assign) -> None:
        """Emit an assignment (plain or compound) leaving the value pushed."""
        asm = self.asm
        width = self._lvalue_width(expr.target)
        self.gen_lvalue_address(expr.target)
        asm.emit(ins("push", Reg("rax")))
        self.gen_expr(expr.value)
        asm.emit(ins("pop", Reg("rcx")))
        if expr.op == "=":
            asm.emit(ins("mov", Mem(base=Reg("rcx")), Reg("rax"),
                         width=width))
            return
        op = _ARITH_OPS[expr.op[:-1]]
        # Pointer compound assignment scales the operand.
        if expr.target.type is not None and expr.target.type.is_pointer \
                and expr.op in ("+=", "-="):
            elem = expr.target.type.element()
            if elem.size > 1:
                asm.emit(ins("imul", Reg("rax"), Imm(elem.size)))
        if op in ("idiv", "irem"):
            asm.emit(ins("mov", Reg("rdx"), Reg("rax")))
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rcx")),
                         width=width))
            asm.emit(ins(op, Reg("rax"), Reg("rdx")))
            asm.emit(ins("mov", Mem(base=Reg("rcx")), Reg("rax"),
                         width=width))
        else:
            asm.emit(ins(op, Mem(base=Reg("rcx")), Reg("rax"), width=width))
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rcx")),
                         width=width))

    def gen_unary(self, expr: Unary) -> None:
        """Emit a prefix operator."""
        asm = self.asm
        if expr.op == "*":
            self.gen_expr(expr.operand)
            width = expr.type.size if not expr.type.is_pointer else 8
            self.gen_load_from_rax(expr.type, width)
            return
        if expr.op == "&":
            self.gen_lvalue_address(expr.operand)
            return
        self.gen_expr(expr.operand)
        if expr.op == "-":
            asm.emit(ins("neg", Reg("rax")))
        elif expr.op == "~":
            asm.emit(ins("not", Reg("rax")))
        elif expr.op == "!":
            true_label = self.new_label("nz")
            end = self.new_label("nend")
            asm.emit(ins("test", Reg("rax"), Reg("rax")))
            asm.emit(ins("jne", Label(true_label)))
            asm.emit(ins("mov", Reg("rax"), Imm(1)))
            asm.emit(ins("jmp", Label(end)))
            asm.label(true_label)
            asm.emit(ins("mov", Reg("rax"), Imm(0)))
            asm.label(end)
        else:
            raise CodegenError(f"bad unary {expr.op}")

    def gen_binary(self, expr: Binary) -> None:
        """Emit an infix operator (short-circuit for && / ||)."""
        asm = self.asm
        if expr.op in _CMP_JCC:
            true_label = self.new_label("cmpt")
            end = self.new_label("cmpe")
            self.gen_cond_branch(expr, true_label=true_label)
            asm.emit(ins("mov", Reg("rax"), Imm(0)))
            asm.emit(ins("jmp", Label(end)))
            asm.label(true_label)
            asm.emit(ins("mov", Reg("rax"), Imm(1)))
            asm.label(end)
            return
        if expr.op in ("&&", "||"):
            short_label = self.new_label("sc")
            end = self.new_label("scend")
            if expr.op == "&&":
                self.gen_cond_branch(expr, false_label=short_label)
                asm.emit(ins("mov", Reg("rax"), Imm(1)))
                asm.emit(ins("jmp", Label(end)))
                asm.label(short_label)
                asm.emit(ins("mov", Reg("rax"), Imm(0)))
            else:
                self.gen_cond_branch(expr, true_label=short_label)
                asm.emit(ins("mov", Reg("rax"), Imm(0)))
                asm.emit(ins("jmp", Label(end)))
                asm.label(short_label)
                asm.emit(ins("mov", Reg("rax"), Imm(1)))
            asm.label(end)
            return
        self.gen_expr(expr.left)
        asm.emit(ins("push", Reg("rax")))
        self.gen_expr(expr.right)
        # Pointer arithmetic scaling.
        if expr.op in ("+", "-") and expr.left.type is not None \
                and expr.left.type.is_pointer:
            elem = expr.left.type.element()
            if elem.size > 1:
                asm.emit(ins("imul", Reg("rax"), Imm(elem.size)))
        asm.emit(ins("mov", Reg("rcx"), Reg("rax")))
        asm.emit(ins("pop", Reg("rax")))
        asm.emit(ins(_ARITH_OPS[expr.op], Reg("rax"), Reg("rcx")))

    # -- calls -----------------------------------------------------------------------

    def gen_call(self, expr: Call) -> None:
        """Emit a direct, builtin or function-pointer call."""
        asm = self.asm
        callee = expr.callee
        if isinstance(callee, Ident) and callee.binding is not None and \
                callee.binding[0] == "builtin":
            self.gen_atomic_builtin(callee.binding[1], expr)
            return
        if len(expr.args) > len(ARG_REGS):
            raise CodegenError(
                f"call with {len(expr.args)} arguments (max "
                f"{len(ARG_REGS)}; MiniC passes arguments in registers)")
        for arg in expr.args:
            self.gen_expr(arg)
            asm.emit(ins("push", Reg("rax")))
        for index in reversed(range(len(expr.args))):
            asm.emit(ins("pop", ARG_REGS[index]))
        if isinstance(callee, Ident) and callee.binding is not None:
            kind = callee.binding[0]
            if kind == "func":
                asm.emit(ins("call", Label(f"fn_{callee.binding[1]}")))
                return
            if kind == "import":
                asm.emit(self.import_call(callee.binding[1]))
                return
        # Indirect call through a function pointer value.
        self.gen_expr_saving_args(callee, len(expr.args))
        asm.emit(ins("call", Reg("r10")))

    def gen_expr_saving_args(self, callee: Expr, argc: int) -> None:
        """Evaluate a callee expression without clobbering argument regs."""
        asm = self.asm
        for index in range(argc):
            asm.emit(ins("push", ARG_REGS[index]))
        self.gen_expr(callee)
        asm.emit(ins("mov", Reg("r10"), Reg("rax")))
        for index in reversed(range(argc)):
            asm.emit(ins("pop", ARG_REGS[index]))

    # -- atomic builtins (§3.3.1) -------------------------------------------------------

    def _atomic_width(self, expr: Call) -> int:
        ptr_type = expr.args[0].type
        if ptr_type is not None and ptr_type.is_pointer:
            return ptr_type.element().size
        return 8

    def gen_atomic_builtin(self, name: str, expr: Call) -> None:
        """Emit a ``__sync_*`` builtin as its LOCK-prefixed sequence."""
        asm = self.asm
        if name == "__sync_synchronize":
            asm.emit(ins("mfence"))
            asm.emit(ins("mov", Reg("rax"), Imm(0)))
            return
        if name == "__builtin_rdtls":
            asm.emit(ins("rdtls", Reg("rax")))
            return
        width = self._atomic_width(expr)
        if name == "__atomic_load_n":
            self.gen_expr(expr.args[0])
            self.gen_load_from_rax(expr.args[0].type.element(), width)
            return
        if name == "__atomic_store_n":
            self.gen_expr(expr.args[0])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[1])
            asm.emit(ins("pop", Reg("rcx")))
            asm.emit(ins("mov", Mem(base=Reg("rcx")), Reg("rax"),
                         width=width))
            return
        if name == "__sync_lock_release":
            self.gen_expr(expr.args[0])
            asm.emit(ins("mov", Mem(base=Reg("rax")), Imm(0), width=width))
            asm.emit(ins("mov", Reg("rax"), Imm(0)))
            return
        if name in ("__sync_fetch_and_add", "__sync_add_and_fetch",
                    "__sync_fetch_and_sub", "__sync_sub_and_fetch"):
            self.gen_expr(expr.args[0])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[1])
            asm.emit(ins("mov", Reg("rdx"), Reg("rax")))
            asm.emit(ins("mov", Reg("rsi"), Reg("rax")))   # saved operand
            asm.emit(ins("pop", Reg("rcx")))
            if "sub" in name:
                asm.emit(ins("neg", Reg("rdx")))
            asm.emit(ins("xadd", Mem(base=Reg("rcx")), Reg("rdx"),
                         lock=True, width=width))
            asm.emit(ins("mov", Reg("rax"), Reg("rdx")))   # old value
            if name == "__sync_add_and_fetch":
                asm.emit(ins("add", Reg("rax"), Reg("rsi")))
            elif name == "__sync_sub_and_fetch":
                asm.emit(ins("sub", Reg("rax"), Reg("rsi")))
            return
        if name == "__sync_lock_test_and_set":
            self.gen_expr(expr.args[0])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[1])
            asm.emit(ins("pop", Reg("rcx")))
            asm.emit(ins("xchg", Mem(base=Reg("rcx")), Reg("rax"),
                         width=width))
            return
        if name in ("__sync_val_compare_and_swap",
                    "__sync_bool_compare_and_swap"):
            self.gen_expr(expr.args[0])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[1])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[2])
            asm.emit(ins("mov", Reg("rdx"), Reg("rax")))
            asm.emit(ins("pop", Reg("rax")))       # expected
            asm.emit(ins("pop", Reg("rcx")))       # address
            asm.emit(ins("cmpxchg", Mem(base=Reg("rcx")), Reg("rdx"),
                         lock=True, width=width))
            if name == "__sync_bool_compare_and_swap":
                true_label = self.new_label("casok")
                end = self.new_label("casend")
                asm.emit(ins("je", Label(true_label)))
                asm.emit(ins("mov", Reg("rax"), Imm(0)))
                asm.emit(ins("jmp", Label(end)))
                asm.label(true_label)
                asm.emit(ins("mov", Reg("rax"), Imm(1)))
                asm.label(end)
            return
        if name in ("__sync_fetch_and_or", "__sync_fetch_and_and",
                    "__sync_fetch_and_xor"):
            op = {"__sync_fetch_and_or": "or",
                  "__sync_fetch_and_and": "and",
                  "__sync_fetch_and_xor": "xor"}[name]
            self.gen_expr(expr.args[0])
            asm.emit(ins("push", Reg("rax")))
            self.gen_expr(expr.args[1])
            asm.emit(ins("mov", Reg("rsi"), Reg("rax")))
            asm.emit(ins("pop", Reg("rcx")))
            retry = self.new_label("rmw")
            asm.label(retry)
            asm.emit(ins("mov", Reg("rax"), Mem(base=Reg("rcx")),
                         width=width))
            asm.emit(ins("mov", Reg("rdx"), Reg("rax")))
            asm.emit(ins(op, Reg("rdx"), Reg("rsi")))
            asm.emit(ins("cmpxchg", Mem(base=Reg("rcx")), Reg("rdx"),
                         lock=True, width=width))
            asm.emit(ins("jne", Label(retry)))
            return
        raise CodegenError(f"unsupported builtin {name}")
