"""Semantic analysis for MiniC: symbol resolution and type annotation.

Binds every :class:`Ident` to one of ``("local", name)``,
``("param", index)``, ``("global", name)``, ``("func", name)`` or
``("import", name)``, computes expression types, and collects the
string literal pool.  Unresolved function names become library imports,
as in pre-C99 C.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ast import (Assign, Binary, BlockStmt, BreakStmt, Call, CastExpr,
                  ContinueStmt, Decl, Expr, ExprStmt, ForStmt, FuncDef,
                  GlobalDecl, Ident, IfStmt, Index, IntLit, Program,
                  ReturnStmt, SizeofExpr, StrLit, SwitchStmt, Ternary, Type,
                  Unary, WhileStmt, INT)

#: Compiler builtins that lower to hardware atomic instructions.
ATOMIC_BUILTINS = {
    "__sync_fetch_and_add", "__sync_add_and_fetch",
    "__sync_fetch_and_sub", "__sync_sub_and_fetch",
    "__sync_fetch_and_or", "__sync_fetch_and_and", "__sync_fetch_and_xor",
    "__sync_val_compare_and_swap", "__sync_bool_compare_and_swap",
    "__sync_lock_test_and_set", "__sync_lock_release",
    "__sync_synchronize",
    "__atomic_load_n", "__atomic_store_n",
    # Reads the TLS base register; lifted IR has no representation for
    # it, so code containing it defeats strict translators (the
    # xalancbmk-style failure).
    "__builtin_rdtls",
}


class SemaError(Exception):
    """Raised on type errors, undeclared names and bad builtins."""
    pass


class LocalVar:
    """A local variable or array (storage decided by codegen)."""

    def __init__(self, name: str, type_: Type,
                 array_size: Optional[int]) -> None:
        self.name = name
        self.type = type_
        self.array_size = array_size
        #: Address-of taken or array: must live in memory.
        self.address_taken = array_size is not None

    @property
    def storage_size(self) -> int:
        """Frame bytes this local needs (arrays included)."""
        if self.array_size is not None:
            return self.array_size * self.type.size
        return self.type.size

    @property
    def value_type(self) -> Type:
        """Type when the name is used in an expression (arrays decay)."""
        if self.array_size is not None:
            return self.type.pointer_to()
        return self.type


class FunctionInfo:
    """Resolved signature plus the function's local-variable layout."""
    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.locals: Dict[str, LocalVar] = {}
        self.imports_used: Set[str] = set()
        #: Functions whose address is taken (callback candidates).
        self.address_taken_funcs: Set[str] = set()


class SemaResult:
    """Analysis output: per-function info and global layout."""
    def __init__(self, program: Program) -> None:
        self.program = program
        self.functions: Dict[str, FunctionInfo] = {}
        self.globals: Dict[str, GlobalDecl] = {}
        self.strings: List[str] = []
        self.imports: Set[str] = set()
        #: All function names whose address is taken somewhere.
        self.callback_funcs: Set[str] = set()


def analyze(program: Program) -> SemaResult:
    """Type-check a Program and compute storage layouts."""
    result = SemaResult(program)
    func_names = {f.name for f in program.functions}
    for decl in program.globals:
        if decl.name in result.globals:
            raise SemaError(f"duplicate global {decl.name!r}")
        result.globals[decl.name] = decl
    for func in program.functions:
        info = FunctionInfo(func)
        result.functions[func.name] = info
        _Analyzer(result, info, func_names).run()
    return result


class _Analyzer:
    def __init__(self, result: SemaResult, info: FunctionInfo,
                 func_names: Set[str]) -> None:
        self.result = result
        self.info = info
        self.func_names = func_names
        self.scopes: List[Dict[str, str]] = []   # name -> unique local name
        self.param_names = [p for _, p in info.func.params]

    def run(self) -> None:
        """Analyse every global and function."""
        self.scopes.append({})
        self.visit_block(self.info.func.body)
        self.scopes.pop()

    # -- scope helpers -----------------------------------------------------

    def declare_local(self, name: str, type_: Type,
                      array_size: Optional[int]) -> str:
        """Add a local to the current scope (rejecting duplicates)."""
        scope = self.scopes[-1]
        if name in scope:
            raise SemaError(
                f"{self.info.func.name}: redeclaration of {name!r}")
        unique = name
        counter = 1
        while unique in self.info.locals:
            unique = f"{name}.{counter}"
            counter += 1
        scope[name] = unique
        self.info.locals[unique] = LocalVar(unique, type_, array_size)
        return unique

    def lookup(self, name: str) -> Optional[tuple]:
        """Resolve a name through the scope stack, then globals/functions."""
        for scope in reversed(self.scopes):
            if name in scope:
                return ("local", scope[name])
        if name in self.param_names:
            return ("param", self.param_names.index(name))
        if name in self.result.globals:
            return ("global", name)
        if name in self.func_names:
            return ("func", name)
        return None

    # -- statements -----------------------------------------------------------

    def visit_block(self, block: BlockStmt) -> None:
        """Analyse a braced block in a fresh scope."""
        self.scopes.append({})
        for stmt in block.body:
            self.visit_stmt(stmt)
        self.scopes.pop()

    def visit_stmt(self, stmt) -> None:
        """Analyse one statement."""
        if isinstance(stmt, BlockStmt):
            self.visit_block(stmt)
        elif isinstance(stmt, Decl):
            if stmt.init is not None:
                self.visit_expr(stmt.init)
            unique = self.declare_local(stmt.name, stmt.type,
                                        stmt.array_size)
            stmt.name = unique
        elif isinstance(stmt, ExprStmt):
            self.visit_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self.visit_expr(stmt.cond)
            self.visit_block(stmt.then)
            if stmt.otherwise is not None:
                self.visit_block(stmt.otherwise)
        elif isinstance(stmt, WhileStmt):
            self.visit_expr(stmt.cond)
            self.visit_block(stmt.body)
        elif isinstance(stmt, ForStmt):
            self.scopes.append({})
            if stmt.init is not None:
                self.visit_stmt(stmt.init)
            if stmt.cond is not None:
                self.visit_expr(stmt.cond)
            if stmt.step is not None:
                self.visit_expr(stmt.step)
            self.visit_block(stmt.body)
            self.scopes.pop()
        elif isinstance(stmt, SwitchStmt):
            self.visit_expr(stmt.value)
            for _, body in stmt.cases:
                self.visit_block(body)
            if stmt.default is not None:
                self.visit_block(stmt.default)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                self.visit_expr(stmt.value)
        elif isinstance(stmt, (BreakStmt, ContinueStmt)):
            pass
        else:
            raise SemaError(f"unknown statement {stmt!r}")

    # -- expressions --------------------------------------------------------------

    def visit_expr(self, expr: Expr) -> Type:
        """Analyse one expression and return its type."""
        if isinstance(expr, IntLit):
            expr.type = INT
        elif isinstance(expr, StrLit):
            if expr.value not in self.result.strings:
                self.result.strings.append(expr.value)
            expr.type = Type("char", 1)
        elif isinstance(expr, Ident):
            binding = self.lookup(expr.name)
            if binding is None:
                raise SemaError(
                    f"{self.info.func.name}: undefined name {expr.name!r} "
                    f"(line {expr.line})")
            expr.binding = binding
            kind = binding[0]
            if kind == "local":
                expr.type = self.info.locals[binding[1]].value_type
            elif kind == "param":
                expr.type = self.info.func.params[binding[1]][0]
            elif kind == "global":
                decl = self.result.globals[binding[1]]
                expr.type = (decl.type.pointer_to()
                             if decl.array_size is not None else decl.type)
            else:   # func
                self.result.callback_funcs.add(binding[1])
                self.info.address_taken_funcs.add(binding[1])
                expr.type = INT
        elif isinstance(expr, Unary):
            inner = self.visit_expr(expr.operand)
            if expr.op == "*":
                if not inner.is_pointer:
                    raise SemaError(
                        f"line {expr.line}: dereference of non-pointer")
                expr.type = inner.element()
            elif expr.op == "&":
                expr.type = self._lvalue_type(expr.operand).pointer_to()
                self._mark_address_taken(expr.operand)
            else:
                expr.type = INT
        elif isinstance(expr, Binary):
            left = self.visit_expr(expr.left)
            right = self.visit_expr(expr.right)
            if expr.op in ("+", "-") and left.is_pointer:
                expr.type = left
            elif expr.op == "+" and right.is_pointer:
                expr.type = right
            else:
                expr.type = INT
        elif isinstance(expr, Assign):
            self.visit_expr(expr.target)
            self.visit_expr(expr.value)
            expr.type = expr.target.type
        elif isinstance(expr, Call):
            for arg in expr.args:
                self.visit_expr(arg)
            callee = expr.callee
            if isinstance(callee, Ident):
                binding = self.lookup(callee.name)
                if binding is None:
                    if callee.name in ATOMIC_BUILTINS:
                        callee.binding = ("builtin", callee.name)
                    else:
                        # Implicit library import.
                        callee.binding = ("import", callee.name)
                        self.result.imports.add(callee.name)
                        self.info.imports_used.add(callee.name)
                    callee.type = INT
                elif binding[0] == "func":
                    callee.binding = binding
                    callee.type = INT
                else:
                    # Call through a function-pointer variable.
                    self.visit_expr(callee)
            else:
                self.visit_expr(callee)
            expr.type = INT
        elif isinstance(expr, Index):
            base = self.visit_expr(expr.base)
            self.visit_expr(expr.index)
            if not base.is_pointer:
                raise SemaError(f"line {expr.line}: subscript of non-pointer")
            expr.type = base.element()
        elif isinstance(expr, Ternary):
            self.visit_expr(expr.cond)
            t = self.visit_expr(expr.if_true)
            self.visit_expr(expr.if_false)
            expr.type = t
        elif isinstance(expr, CastExpr):
            self.visit_expr(expr.operand)
            expr.type = expr.to
        elif isinstance(expr, SizeofExpr):
            expr.type = INT
        else:
            raise SemaError(f"unknown expression {expr!r}")
        return expr.type

    def _lvalue_type(self, expr: Expr) -> Type:
        if isinstance(expr, Ident):
            if expr.binding and expr.binding[0] == "local":
                var = self.info.locals[expr.binding[1]]
                if var.array_size is not None:
                    return var.type          # &arr == arr decayed
                return var.type
            return expr.type
        if isinstance(expr, (Index, Unary)):
            return expr.type
        raise SemaError(f"line {expr.line}: cannot take address")

    def _mark_address_taken(self, expr: Expr) -> None:
        if isinstance(expr, Ident) and expr.binding \
                and expr.binding[0] == "local":
            self.info.locals[expr.binding[1]].address_taken = True
        elif isinstance(expr, Ident) and expr.binding \
                and expr.binding[0] == "func":
            self.result.callback_funcs.add(expr.binding[1])
