"""MiniC optimising backend (O2/O3).

Differences from the O0 stack machine, mirroring what ``gcc -O3`` does
to small C programs:

* hot scalar locals live in callee-saved registers (rbx, r12–r15);
* expressions evaluate through a scratch-register stack, not push/pop;
* comparisons branch on flags directly instead of materialising 0/1;
* constant subtrees are folded at generation time;
* array indexing uses scaled addressing modes;
* dense ``switch`` statements compile to jump tables — the indirect
  jumps whose targets static CFG recovery must then rediscover;
* simple elementwise and reduction loops over ``int32`` arrays are
  auto-vectorised to 4-lane SIMD — the code the lifter later has to
  scalarise, reproducing the paper's *linear_regression* slowdown.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import ARG_REGS, Imm, Label, Mem, Reg, ins
from .ast import (Assign, Binary, BlockStmt, BreakStmt, Call, CastExpr,
                  ContinueStmt, Decl, Expr, ExprStmt, ForStmt, FuncDef,
                  Ident, IfStmt, Index, IntLit, ReturnStmt, SizeofExpr,
                  StrLit, SwitchStmt, Ternary, Type, Unary, WhileStmt)
from .codegen import (CodegenBase, CodegenError, _ARITH_OPS, _CMP_INVERSE,
                      _CMP_JCC)
from .sema import SemaResult

CALLEE_SAVED_POOL = ("rbx", "r12", "r13", "r14", "r15")
SCRATCH_POOL = ("rax", "r10", "r11", "rcx", "rdx", "rsi", "rdi", "r8", "r9")


class CodegenO3(CodegenBase):
    """The gcc -O3 stand-in: register locals, scratch-pool expressions, jump tables, auto-vectorisation."""
    def __init__(self, sema: SemaResult, vectorize: bool = True) -> None:
        super().__init__(sema, opt_level=3)
        self.vectorize = vectorize
        self.current: Optional[FuncDef] = None
        self.reg_locals: Dict[str, Reg] = {}       # local/param -> register
        self.slot_offsets: Dict[str, int] = {}     # stack-resident locals
        self.frame_size = 0
        self.used_callee_saved: List[Reg] = []
        self.break_labels: List[str] = []
        self.continue_labels: List[str] = []
        self.epilogue_label = ""
        self._scratch_free: List[str] = []
        self._scratch_live: List[str] = []
        self._pending_tables: List[Tuple[str, List[str]]] = []

    def run(self):
        """Generate the whole program and return its VXE image."""
        for func in self.sema.program.functions:
            self.gen_function(func)
        return self.finish()

    # -- register bookkeeping -------------------------------------------------

    def acquire(self) -> Reg:
        """Take a scratch register from the expression pool."""
        if not self._scratch_free:
            raise CodegenError(
                f"{self.current.name}: expression too deep for scratch pool")
        name = self._scratch_free.pop(0)
        self._scratch_live.append(name)
        return Reg(name)

    def release(self, reg: Reg) -> None:
        """Return a scratch register to the expression pool."""
        self._scratch_live.remove(reg.name)
        self._scratch_free.insert(0, reg.name)

    # -- functions ----------------------------------------------------------------

    def _count_uses(self, func: FuncDef) -> Dict[str, int]:
        counts: Dict[str, int] = {}

        def walk_expr(expr, weight):
            if expr is None:
                return
            if isinstance(expr, Ident) and expr.binding:
                kind, key = expr.binding[0], expr.binding
                if kind in ("local", "param"):
                    counts[str(key)] = counts.get(str(key), 0) + weight
            for attr in ("operand", "left", "right", "target", "value",
                         "callee", "base", "index", "cond", "if_true",
                         "if_false"):
                child = getattr(expr, attr, None)
                if isinstance(child, Expr):
                    walk_expr(child, weight)
            for arg in getattr(expr, "args", []) or []:
                walk_expr(arg, weight)

        def walk_stmt(stmt, weight):
            if isinstance(stmt, BlockStmt):
                for child in stmt.body:
                    walk_stmt(child, weight)
            elif isinstance(stmt, Decl):
                walk_expr(stmt.init, weight)
            elif isinstance(stmt, ExprStmt):
                walk_expr(stmt.expr, weight)
            elif isinstance(stmt, IfStmt):
                walk_expr(stmt.cond, weight)
                walk_stmt(stmt.then, weight)
                if stmt.otherwise:
                    walk_stmt(stmt.otherwise, weight)
            elif isinstance(stmt, WhileStmt):
                walk_expr(stmt.cond, weight * 8)
                walk_stmt(stmt.body, weight * 8)
            elif isinstance(stmt, ForStmt):
                if stmt.init:
                    walk_stmt(stmt.init, weight)
                walk_expr(stmt.cond, weight * 8)
                walk_expr(stmt.step, weight * 8)
                walk_stmt(stmt.body, weight * 8)
            elif isinstance(stmt, SwitchStmt):
                walk_expr(stmt.value, weight)
                for _, body in stmt.cases:
                    walk_stmt(body, weight)
                if stmt.default:
                    walk_stmt(stmt.default, weight)
            elif isinstance(stmt, ReturnStmt):
                walk_expr(stmt.value, weight)

        walk_stmt(func.body, 1)
        return counts

    def gen_function(self, func: FuncDef) -> None:
        """Emit one function with callee-saved register-allocated locals."""
        if len(func.params) > len(ARG_REGS):
            raise CodegenError(
                f"{func.name}: {len(func.params)} parameters "
                f"(max {len(ARG_REGS)})")
        self.current = func
        info = self.sema.functions[func.name]
        counts = self._count_uses(func)
        self.reg_locals = {}
        self.slot_offsets = {}
        self.used_callee_saved = []
        self._scratch_free = list(SCRATCH_POOL)
        self._scratch_live = []

        # Assign the hottest non-address-taken scalars to callee-saved regs.
        candidates: List[Tuple[int, str, str]] = []
        for name, var in info.locals.items():
            if var.address_taken or var.array_size is not None:
                continue
            if not var.type.is_pointer and var.type.size < 8:
                # Narrow types need their memory round-trip to get
                # wraparound/sign semantics; keep them in the frame.
                continue
            key = str(("local", name))
            candidates.append((counts.get(key, 0), "local", name))
        for index, (ptype, pname) in enumerate(func.params):
            key = str(("param", index))
            candidates.append((counts.get(key, 1), "param", str(index)))
        candidates.sort(reverse=True)
        pool = list(CALLEE_SAVED_POOL)
        for _count, kind, name in candidates:
            if not pool:
                break
            reg = Reg(pool.pop(0))
            self.reg_locals[f"{kind}:{name}"] = reg
            self.used_callee_saved.append(reg)

        # Remaining locals get stack slots.
        offset = 0
        for name, var in info.locals.items():
            if f"local:{name}" in self.reg_locals:
                continue
            offset += (var.storage_size + 7) & ~7
            self.slot_offsets[f"local:{name}"] = -offset
        for index in range(len(func.params)):
            if f"param:{index}" in self.reg_locals:
                continue
            offset += 8
            self.slot_offsets[f"param:{index}"] = -offset
        self.frame_size = (offset + 15) & ~15
        self.epilogue_label = self.new_label(f"epi_{func.name}")

        asm = self.asm
        asm.align(8)
        asm.label(f"fn_{func.name}")
        for reg in self.used_callee_saved:
            asm.emit(ins("push", reg))
        if self.frame_size:
            asm.emit(ins("push", Reg("rbp")))
            asm.emit(ins("mov", Reg("rbp"), Reg("rsp")))
            asm.emit(ins("sub", Reg("rsp"), Imm(self.frame_size)))
        for index in range(len(func.params)):
            home = self._home(f"param:{index}")
            if isinstance(home, Reg):
                asm.emit(ins("mov", home, ARG_REGS[index]))
            else:
                asm.emit(ins("mov", home, ARG_REGS[index]))
        self.gen_block(func.body)
        asm.emit(ins("mov", Reg("rax"), Imm(0)))
        asm.label(self.epilogue_label)
        if self.frame_size:
            asm.emit(ins("mov", Reg("rsp"), Reg("rbp")))
            asm.emit(ins("pop", Reg("rbp")))
        for reg in reversed(self.used_callee_saved):
            asm.emit(ins("pop", reg))
        asm.emit(ins("ret"))
        # Jump tables are placed after the function body.
        for table_label, case_labels in self._pending_tables:
            asm.align(8)
            asm.label(table_label)
            for case_label in case_labels:
                asm.label_ref(case_label)
        self._pending_tables = []

    def _home(self, key: str):
        """Register or memory operand where a local/param lives."""
        reg = self.reg_locals.get(key)
        if reg is not None:
            return reg
        return Mem(base=Reg("rbp"), disp=self.slot_offsets[key])

    def _ident_home(self, expr: Ident):
        kind = expr.binding[0]
        if kind == "local":
            return self._home(f"local:{expr.binding[1]}")
        if kind == "param":
            return self._home(f"param:{expr.binding[1]}")
        return None

    # -- statements ------------------------------------------------------------------

    def gen_block(self, block: BlockStmt) -> None:
        """Emit a braced block, opening and closing its scope."""
        for stmt in block.body:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        """Emit one statement (vectorising eligible for-loops first)."""
        asm = self.asm
        if isinstance(stmt, BlockStmt):
            self.gen_block(stmt)
        elif isinstance(stmt, Decl):
            if stmt.init is not None:
                info = self.sema.functions[self.current.name]
                var = info.locals[stmt.name]
                home = self._home(f"local:{stmt.name}") \
                    if var.array_size is None else None
                if home is None:
                    raise CodegenError("array initialiser not supported")
                value = self._const_eval(stmt.init)
                if value is not None and isinstance(home, Reg):
                    asm.emit(ins("mov", home, Imm(value)))
                elif isinstance(home, Reg):
                    self.gen_expr(stmt.init, home)
                else:
                    tmp = self.acquire()
                    self.gen_expr(stmt.init, tmp)
                    asm.emit(ins("mov", home, tmp,
                                 width=8 if var.type.is_pointer
                                 else var.type.size))
                    self.release(tmp)
        elif isinstance(stmt, ExprStmt):
            self.gen_expr_discard(stmt.expr)
        elif isinstance(stmt, IfStmt):
            else_label = self.new_label("else")
            end_label = self.new_label("endif")
            self.gen_cond_branch(stmt.cond, false_label=else_label)
            self.gen_block(stmt.then)
            if stmt.otherwise is not None:
                asm.emit(ins("jmp", Label(end_label)))
                asm.label(else_label)
                self.gen_block(stmt.otherwise)
                asm.label(end_label)
            else:
                asm.label(else_label)
        elif isinstance(stmt, WhileStmt):
            head = self.new_label("while")
            end = self.new_label("wend")
            self.break_labels.append(end)
            self.continue_labels.append(head)
            asm.label(head)
            if stmt.is_do_while:
                self.gen_block(stmt.body)
                self.gen_cond_branch(stmt.cond, true_label=head)
            else:
                self.gen_cond_branch(stmt.cond, false_label=end)
                self.gen_block(stmt.body)
                asm.emit(ins("jmp", Label(head)))
            asm.label(end)
            self.break_labels.pop()
            self.continue_labels.pop()
        elif isinstance(stmt, ForStmt):
            if self.vectorize and self._try_vectorize(stmt):
                return
            head = self.new_label("for")
            step_label = self.new_label("fstep")
            end = self.new_label("fend")
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            asm.label(head)
            if stmt.cond is not None:
                self.gen_cond_branch(stmt.cond, false_label=end)
            self.break_labels.append(end)
            self.continue_labels.append(step_label)
            self.gen_block(stmt.body)
            asm.label(step_label)
            if stmt.step is not None:
                self.gen_expr_discard(stmt.step)
            asm.emit(ins("jmp", Label(head)))
            asm.label(end)
            self.break_labels.pop()
            self.continue_labels.pop()
        elif isinstance(stmt, SwitchStmt):
            self.gen_switch(stmt)
        elif isinstance(stmt, BreakStmt):
            asm.emit(ins("jmp", Label(self.break_labels[-1])))
        elif isinstance(stmt, ContinueStmt):
            asm.emit(ins("jmp", Label(self.continue_labels[-1])))
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                # rax is in the scratch pool; claim it explicitly.
                if "rax" in self._scratch_free:
                    self._scratch_free.remove("rax")
                    self._scratch_live.append("rax")
                    self.gen_expr(stmt.value, Reg("rax"))
                    self.release(Reg("rax"))
                else:
                    tmp = self.acquire()
                    self.gen_expr(stmt.value, tmp)
                    asm.emit(ins("mov", Reg("rax"), tmp))
                    self.release(tmp)
            else:
                asm.emit(ins("mov", Reg("rax"), Imm(0)))
            asm.emit(ins("jmp", Label(self.epilogue_label)))
        else:
            raise CodegenError(f"unsupported statement {stmt!r}")

    # -- switch ---------------------------------------------------------------------

    def gen_switch(self, stmt: SwitchStmt) -> None:
        """Emit a switch as a bounds-checked jump table when dense."""
        asm = self.asm
        end = self.new_label("swend")
        default_label = self.new_label("swdef")
        value_reg = self.acquire()
        self.gen_expr(stmt.value, value_reg)
        case_values = [v for v, _ in stmt.cases]
        dense = (len(stmt.cases) >= 4 and
                 max(case_values) - min(case_values) + 1
                 <= 3 * len(stmt.cases))
        case_labels = [self.new_label("case") for _ in stmt.cases]
        if dense:
            low, high = min(case_values), max(case_values)
            table_label = self.new_label("jt")
            span = high - low + 1
            slot_labels = [default_label] * span
            for (value, _), label in zip(stmt.cases, case_labels):
                slot_labels[value - low] = label
            if low:
                asm.emit(ins("sub", value_reg, Imm(low)))
            asm.emit(ins("cmp", value_reg, Imm(span)))
            asm.emit(ins("jae", Label(default_label)))
            # The classic jump-table idiom: an indirect jump through a
            # table of code pointers.
            asm.emit(ins("shl", value_reg, Imm(3)))
            table_reg = self.acquire()
            asm.emit(ins("mov", table_reg, Label(table_label)))
            asm.emit(ins("add", table_reg, value_reg))
            asm.emit(ins("jmp", Mem(base=table_reg)))
            self.release(table_reg)
            self._pending_tables.append((table_label, slot_labels))
        else:
            for (value, _), label in zip(stmt.cases, case_labels):
                asm.emit(ins("cmp", value_reg, Imm(value)))
                asm.emit(ins("je", Label(label)))
            asm.emit(ins("jmp", Label(default_label)))
        self.release(value_reg)
        self.break_labels.append(end)
        for (_, body), label in zip(stmt.cases, case_labels):
            asm.label(label)
            self.gen_block(body)
            asm.emit(ins("jmp", Label(end)))
        asm.label(default_label)
        if stmt.default is not None:
            self.gen_block(stmt.default)
        self.break_labels.pop()
        asm.label(end)

    # -- conditions --------------------------------------------------------------------

    def gen_cond_branch(self, cond: Expr,
                        true_label: Optional[str] = None,
                        false_label: Optional[str] = None) -> None:
        """Emit a condition directly as compare+branch, incl. &&/|| trees."""
        asm = self.asm
        if isinstance(cond, Binary) and cond.op in _CMP_JCC:
            left = self.acquire()
            self.gen_expr(cond.left, left)
            rhs_const = self._const_eval(cond.right)
            if rhs_const is not None and -(1 << 31) <= rhs_const < (1 << 31):
                asm.emit(ins("cmp", left, Imm(rhs_const)))
            else:
                right = self.acquire()
                self.gen_expr(cond.right, right)
                asm.emit(ins("cmp", left, right))
                self.release(right)
            self.release(left)
            if true_label is not None:
                asm.emit(ins(_CMP_JCC[cond.op], Label(true_label)))
            if false_label is not None:
                asm.emit(ins(_CMP_INVERSE[cond.op], Label(false_label)))
            return
        if isinstance(cond, Binary) and cond.op == "&&":
            if false_label is not None:
                self.gen_cond_branch(cond.left, false_label=false_label)
                self.gen_cond_branch(cond.right, true_label=true_label,
                                     false_label=false_label)
            else:
                skip = self.new_label("andskip")
                self.gen_cond_branch(cond.left, false_label=skip)
                self.gen_cond_branch(cond.right, true_label=true_label)
                asm.label(skip)
            return
        if isinstance(cond, Binary) and cond.op == "||":
            if true_label is not None:
                self.gen_cond_branch(cond.left, true_label=true_label)
                self.gen_cond_branch(cond.right, true_label=true_label,
                                     false_label=false_label)
            else:
                skip = self.new_label("orskip")
                self.gen_cond_branch(cond.left, true_label=skip)
                self.gen_cond_branch(cond.right, false_label=false_label)
                asm.label(skip)
            return
        if isinstance(cond, Unary) and cond.op == "!":
            self.gen_cond_branch(cond.operand, true_label=false_label,
                                 false_label=true_label)
            return
        tmp = self.acquire()
        self.gen_expr(cond, tmp)
        asm.emit(ins("test", tmp, tmp))
        self.release(tmp)
        if true_label is not None:
            asm.emit(ins("jne", Label(true_label)))
        if false_label is not None:
            asm.emit(ins("je", Label(false_label)))

    # -- expressions --------------------------------------------------------------------

    def _const_eval(self, expr: Expr) -> Optional[int]:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, SizeofExpr):
            return expr.of.size
        if isinstance(expr, Unary) and expr.op in ("-", "~"):
            inner = self._const_eval(expr.operand)
            if inner is None:
                return None
            return -inner if expr.op == "-" else ~inner
        if isinstance(expr, Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": left + right, "-": left - right, "*": left * right,
                    "/": int(left / right) if right else None,
                    "%": left - int(left / right) * right if right else None,
                    "&": left & right, "|": left | right, "^": left ^ right,
                    "<<": left << right, ">>": left >> right,
                }[expr.op]
            except (KeyError, ZeroDivisionError, ValueError):
                return None
        return None

    def gen_expr_discard(self, expr: Expr) -> None:
        """Evaluate an expression only for its side effects."""
        if isinstance(expr, Assign):
            self.gen_assign(expr, want_value=False)
            return
        tmp = self.acquire()
        self.gen_expr(expr, tmp)
        self.release(tmp)

    def gen_expr(self, expr: Expr, dst: Reg) -> None:
        """Evaluate an expression into a specific destination register."""
        asm = self.asm
        value = self._const_eval(expr)
        if value is not None:
            asm.emit(ins("mov", dst, Imm(value)))
            return
        if isinstance(expr, StrLit):
            asm.emit(ins("mov", dst, Imm(self.string_addrs[expr.value])))
        elif isinstance(expr, Ident):
            self.gen_ident_load(expr, dst)
        elif isinstance(expr, Unary):
            self.gen_unary(expr, dst)
        elif isinstance(expr, Binary):
            self.gen_binary(expr, dst)
        elif isinstance(expr, Assign):
            self.gen_assign(expr, want_value=True, dst=dst)
        elif isinstance(expr, Call):
            self.gen_call(expr, dst)
        elif isinstance(expr, Index):
            mem = self.gen_index_operand(expr)
            self._load(dst, mem, expr.type)
            self._release_mem(mem)
        elif isinstance(expr, Ternary):
            else_label = self.new_label("telse")
            end_label = self.new_label("tend")
            self.gen_cond_branch(expr.cond, false_label=else_label)
            self.gen_expr(expr.if_true, dst)
            asm.emit(ins("jmp", Label(end_label)))
            asm.label(else_label)
            self.gen_expr(expr.if_false, dst)
            asm.label(end_label)
        elif isinstance(expr, CastExpr):
            self.gen_expr(expr.operand, dst)
            if not expr.to.is_pointer and expr.to.size < 8:
                if expr.to.size == 4:
                    asm.emit(ins("movsx", dst, dst, width=4))
                else:
                    asm.emit(ins("and", dst,
                                 Imm((1 << (8 * expr.to.size)) - 1)))
        else:
            raise CodegenError(f"unsupported expression {expr!r}")

    def _load(self, dst: Reg, src, type_: Optional[Type]) -> None:
        asm = self.asm
        if type_ is None or type_.is_pointer or type_.size == 8:
            asm.emit(ins("mov", dst, src))
        elif type_.kind == "int32":
            asm.emit(ins("movsx", dst, src, width=4))
        else:
            asm.emit(ins("mov", dst, src, width=type_.size))

    def gen_ident_load(self, expr: Ident, dst: Reg) -> None:
        """Load an identifier from its register home or memory."""
        asm = self.asm
        kind = expr.binding[0]
        if kind == "func":
            asm.emit(ins("mov", dst, Label(f"fn_{expr.binding[1]}")))
            return
        if kind in ("local", "param"):
            home = self._ident_home(expr)
            if isinstance(home, Reg):
                asm.emit(ins("mov", dst, home))
                return
            info = self.sema.functions[self.current.name]
            if kind == "local":
                var = info.locals[expr.binding[1]]
                if var.array_size is not None:
                    asm.emit(ins("lea", dst, home))
                    return
                self._load(dst, home, var.type)
            else:
                asm.emit(ins("mov", dst, home))
            return
        if kind == "global":
            decl = self.sema.globals[expr.binding[1]]
            addr = self.global_addrs[expr.binding[1]]
            if decl.array_size is not None:
                asm.emit(ins("mov", dst, Imm(addr)))
            else:
                self._load(dst, Mem(disp=addr), decl.type)
            return
        raise CodegenError(f"cannot load {expr.binding}")

    def gen_index_operand(self, expr: Index) -> Mem:
        """Build a (possibly scaled) memory operand for ``base[index]``."""
        elem = expr.base.type.element()
        base_reg = self.acquire()
        self.gen_expr(expr.base, base_reg)
        index_const = self._const_eval(expr.index)
        if index_const is not None:
            return Mem(base=base_reg, disp=index_const * elem.size)
        index_reg = self.acquire()
        self.gen_expr(expr.index, index_reg)
        if elem.size in (1, 2, 4, 8):
            return Mem(base=base_reg, index=index_reg, scale=elem.size)
        asm = self.asm
        asm.emit(ins("imul", index_reg, Imm(elem.size)))
        return Mem(base=base_reg, index=index_reg, scale=1)

    def _release_mem(self, mem: Mem) -> None:
        if mem.index is not None and mem.index.name in self._scratch_live:
            self.release(mem.index)
        if mem.base is not None and mem.base.name in self._scratch_live:
            self.release(mem.base)

    def gen_lvalue_operand(self, expr: Expr):
        """Return a Reg (register home) or Mem operand for an lvalue."""
        if isinstance(expr, Ident):
            kind = expr.binding[0]
            if kind in ("local", "param"):
                return self._ident_home(expr)
            if kind == "global":
                return Mem(disp=self.global_addrs[expr.binding[1]])
            raise CodegenError(f"cannot assign {expr.binding}")
        if isinstance(expr, Unary) and expr.op == "*":
            reg = self.acquire()
            self.gen_expr(expr.operand, reg)
            return Mem(base=reg)
        if isinstance(expr, Index):
            return self.gen_index_operand(expr)
        raise CodegenError(f"not an lvalue: {expr!r}")

    def gen_assign(self, expr: Assign, want_value: bool,
                   dst: Optional[Reg] = None) -> None:
        """Emit an assignment, optionally keeping the value in ``dst``."""
        asm = self.asm
        width = 8 if (expr.target.type is None or expr.target.type.is_pointer) \
            else expr.target.type.size
        home = self.gen_lvalue_operand(expr.target)
        value_reg = dst if (want_value and dst is not None) else self.acquire()
        if expr.op == "=":
            self.gen_expr(expr.value, value_reg)
            if isinstance(home, Reg):
                asm.emit(ins("mov", home, value_reg))
            else:
                asm.emit(ins("mov", home, value_reg, width=width))
        else:
            op = _ARITH_OPS[expr.op[:-1]]
            scale = 1
            if expr.target.type is not None and expr.target.type.is_pointer \
                    and expr.op in ("+=", "-="):
                scale = expr.target.type.element().size
            rhs_const = self._const_eval(expr.value)
            if rhs_const is not None and isinstance(home, Reg) and \
                    op not in ("idiv", "irem") and \
                    -(1 << 31) <= rhs_const * scale < (1 << 31):
                asm.emit(ins(op, home, Imm(rhs_const * scale)))
                if want_value:
                    asm.emit(ins("mov", value_reg, home))
            else:
                self.gen_expr(expr.value, value_reg)
                if scale > 1:
                    asm.emit(ins("imul", value_reg, Imm(scale)))
                if isinstance(home, Reg):
                    if op in ("idiv", "irem"):
                        tmp = self.acquire()
                        asm.emit(ins("mov", tmp, home))
                        asm.emit(ins(op, tmp, value_reg))
                        asm.emit(ins("mov", home, tmp))
                        self.release(tmp)
                        if want_value:
                            asm.emit(ins("mov", value_reg, home))
                    else:
                        asm.emit(ins(op, home, value_reg))
                        if want_value:
                            asm.emit(ins("mov", value_reg, home))
                else:
                    if op in ("idiv", "irem"):
                        tmp = self.acquire()
                        self._load(tmp, home,
                                   expr.target.type)
                        asm.emit(ins(op, tmp, value_reg))
                        asm.emit(ins("mov", home, tmp, width=width))
                        self.release(tmp)
                        if want_value:
                            asm.emit(ins("mov", value_reg, tmp))
                    else:
                        asm.emit(ins(op, home, value_reg, width=width))
                        if want_value:
                            self._load(value_reg, home, expr.target.type)
        if isinstance(home, Mem):
            self._release_mem(home)
        if not (want_value and dst is not None):
            self.release(value_reg)

    def gen_unary(self, expr: Unary, dst: Reg) -> None:
        """Emit a prefix operator into ``dst``."""
        asm = self.asm
        if expr.op == "*":
            self.gen_expr(expr.operand, dst)
            self._load(dst, Mem(base=dst), expr.type)
            return
        if expr.op == "&":
            target = expr.operand
            if isinstance(target, Ident) and target.binding[0] in \
                    ("local", "param"):
                home = self._ident_home(target)
                if isinstance(home, Reg):
                    raise CodegenError(
                        "address of register variable (sema should have "
                        "pinned it to memory)")
                asm.emit(ins("lea", dst, home))
                return
            if isinstance(target, Ident) and target.binding[0] == "global":
                asm.emit(ins("mov", dst,
                             Imm(self.global_addrs[target.binding[1]])))
                return
            if isinstance(target, Index):
                mem = self.gen_index_operand(target)
                asm.emit(ins("lea", dst, mem))
                self._release_mem(mem)
                return
            if isinstance(target, Unary) and target.op == "*":
                self.gen_expr(target.operand, dst)
                return
            raise CodegenError(f"cannot take address of {target!r}")
        self.gen_expr(expr.operand, dst)
        if expr.op == "-":
            asm.emit(ins("neg", dst))
        elif expr.op == "~":
            asm.emit(ins("not", dst))
        elif expr.op == "!":
            true_label = self.new_label("nz")
            end = self.new_label("nend")
            asm.emit(ins("test", dst, dst))
            asm.emit(ins("jne", Label(true_label)))
            asm.emit(ins("mov", dst, Imm(1)))
            asm.emit(ins("jmp", Label(end)))
            asm.label(true_label)
            asm.emit(ins("mov", dst, Imm(0)))
            asm.label(end)
        else:
            raise CodegenError(f"bad unary {expr.op}")

    def gen_binary(self, expr: Binary, dst: Reg) -> None:
        """Emit an infix operator into ``dst``."""
        asm = self.asm
        if expr.op in _CMP_JCC or expr.op in ("&&", "||"):
            true_label = self.new_label("bt")
            end = self.new_label("bend")
            self.gen_cond_branch(expr, true_label=true_label)
            asm.emit(ins("mov", dst, Imm(0)))
            asm.emit(ins("jmp", Label(end)))
            asm.label(true_label)
            asm.emit(ins("mov", dst, Imm(1)))
            asm.label(end)
            return
        self.gen_expr(expr.left, dst)
        scale = 1
        if expr.op in ("+", "-") and expr.left.type is not None \
                and expr.left.type.is_pointer:
            scale = expr.left.type.element().size
        rhs_const = self._const_eval(expr.right)
        op = _ARITH_OPS[expr.op]
        if rhs_const is not None and op not in ("idiv", "irem") and \
                -(1 << 31) <= rhs_const * scale < (1 << 31):
            asm.emit(ins(op, dst, Imm(rhs_const * scale)))
            return
        tmp = self.acquire()
        self.gen_expr(expr.right, tmp)
        if scale > 1:
            asm.emit(ins("imul", tmp, Imm(scale)))
        asm.emit(ins(op, dst, tmp))
        self.release(tmp)

    # -- calls ------------------------------------------------------------------------

    def gen_call(self, expr: Call, dst: Reg) -> None:
        """Emit a call, preserving live scratch registers around it."""
        asm = self.asm
        callee = expr.callee
        if isinstance(callee, Ident) and callee.binding is not None and \
                callee.binding[0] == "builtin":
            self.gen_atomic_builtin(callee.binding[1], expr, dst)
            return
        # Save live scratch registers and in-register locals that the
        # callee may clobber (all scratch regs are caller-saved).
        live = [name for name in self._scratch_live if name != dst.name]
        for name in live:
            asm.emit(ins("push", Reg(name)))
        for arg in expr.args:
            tmp = self.acquire()
            self.gen_expr(arg, tmp)
            asm.emit(ins("push", tmp))
            self.release(tmp)
        indirect_reg: Optional[str] = None
        if not (isinstance(callee, Ident) and callee.binding is not None
                and callee.binding[0] in ("func", "import")):
            tmp = self.acquire()
            self.gen_expr(callee, tmp)
            asm.emit(ins("mov", Reg("r11"), tmp))
            self.release(tmp)
            indirect_reg = "r11"
        for index in reversed(range(len(expr.args))):
            asm.emit(ins("pop", ARG_REGS[index]))
        if indirect_reg is not None:
            asm.emit(ins("call", Reg(indirect_reg)))
        elif callee.binding[0] == "func":
            asm.emit(ins("call", Label(f"fn_{callee.binding[1]}")))
        else:
            asm.emit(self.import_call(callee.binding[1]))
        if dst.name != "rax":
            asm.emit(ins("mov", dst, Reg("rax")))
        for name in reversed(live):
            asm.emit(ins("pop", Reg(name)))

    # -- atomic builtins -----------------------------------------------------------------

    def gen_atomic_builtin(self, name: str, expr: Call, dst: Reg) -> None:
        """O3 lowers the builtins with the same instruction sequences as
        O0 (they are already minimal); delegate via a tiny shim that
        ends with the result in rax, then move it to ``dst``."""
        asm = self.asm
        live = [n for n in self._scratch_live if n != dst.name]
        for n in live:
            asm.emit(ins("push", Reg(n)))
        # Reserve the registers the O0 expansion clobbers so nested
        # operand evaluation cannot pick them as temporaries.
        reserved = [n for n in ("rax", "rcx", "rdx", "rsi")
                    if n in self._scratch_free]
        for n in reserved:
            self._scratch_free.remove(n)
            self._scratch_live.append(n)
        shim = _O0Shim(self)
        shim.gen_atomic_builtin(name, expr)
        for n in reserved:
            self.release(Reg(n))
        if dst.name != "rax":
            asm.emit(ins("mov", dst, Reg("rax")))
        for n in reversed(live):
            asm.emit(ins("pop", Reg(n)))

    # -- vectorizer (see vectorize.py) ----------------------------------------------------

    def _try_vectorize(self, stmt: ForStmt) -> bool:
        from .vectorize import try_vectorize_for
        return try_vectorize_for(self, stmt)


class _O0Shim:
    """Adapter exposing the O0 expression evaluator (result in rax) for
    atomic builtin expansion inside the O3 backend."""

    def __init__(self, parent: CodegenO3) -> None:
        from .codegen import CodegenO0
        self._codegen_o0 = CodegenO0
        self.parent = parent
        self._o0 = CodegenO0.__new__(CodegenO0)
        self._o0.sema = parent.sema
        self._o0.asm = parent.asm
        self._o0.image = parent.image
        self._o0.global_addrs = parent.global_addrs
        self._o0.string_addrs = parent.string_addrs
        self._o0._label_counter = parent._label_counter
        self._o0.current = parent.current
        self._o0.opt_level = 3

    def gen_atomic_builtin(self, name: str, expr: Call) -> None:
        """Emit a ``__sync_*`` builtin via the shared O0 sequence shim."""
        o0 = self._o0

        # The O0 evaluator needs rax-centric expression eval; route its
        # gen_expr through the O3 backend so operands honour register
        # homes.  rax/rcx/rdx/rsi are reserved by the caller.
        def gen_expr(e, _parent=self.parent):
            _parent.gen_expr(e, Reg("rax"))

        codegen_o0 = self._codegen_o0
        o0.gen_expr = gen_expr
        o0.new_label = self.parent.new_label
        o0.gen_load_from_rax = \
            lambda t, w: codegen_o0.gen_load_from_rax(o0, t, w)
        codegen_o0.gen_atomic_builtin(o0, name, expr)
