"""The on-disk execution-profile format (feedback-directed optimisation).

A :class:`Profile` is everything the collector learned from concrete
executions of the *original* binary: per-block execution counts,
taken/not-taken edge counts at conditional branches, call-site counts,
indirect-target histograms (the counted generalisation of the ICFT
tracer's bare target sets), and loop trip-count summaries.

The format is deliberately boring:

* **versioned** — ``PROFILE_VERSION`` is stamped into every file and
  folded into the digest, so a format change invalidates downstream
  artifact-cache keys instead of silently misguiding the optimiser;
* **mergeable** — :meth:`Profile.merge` sums counts across runs,
  inputs, threads and processes, and is associative and commutative;
* **digest-stable** — :meth:`Profile.digest` hashes a canonical JSON
  rendering (sorted keys, no hash-seed-dependent iteration order),
  mirroring :func:`repro.core.artifact_cache.stable_digest`, so the
  same profile collected by different interpreter processes keys the
  same cache entries.  Wall-clock time is carried for reporting but
  excluded from the digest.

See ``docs/PGO.md`` for the collect → merge → recompile workflow.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Stamped into every profile file and folded into the digest.
PROFILE_VERSION = "polynima-profile-v1"

#: First line of every profile file ("magic" for cheap sniffing).
PROFILE_FORMAT = "polynima-profile"


class ProfileError(Exception):
    """Raised for unreadable, mismatched or unmergeable profiles."""
    pass


def _counts_to_json(table: Dict[int, int]) -> Dict[str, int]:
    return {str(key): int(value) for key, value in table.items()}

def _counts_from_json(data: Dict[str, Any]) -> Dict[int, int]:
    return {int(key): int(value) for key, value in (data or {}).items()}

def _histo_to_json(table: Dict[int, Dict[int, int]]) -> Dict[str, Dict[str, int]]:
    return {str(site): _counts_to_json(targets)
            for site, targets in table.items()}

def _histo_from_json(data: Dict[str, Any]) -> Dict[int, Dict[int, int]]:
    return {int(site): _counts_from_json(targets)
            for site, targets in (data or {}).items()}


def _merge_counts(into: Dict[int, int], other: Dict[int, int]) -> None:
    for key, value in other.items():
        into[key] = into.get(key, 0) + value


def _merge_histo(into: Dict[int, Dict[int, int]],
                 other: Dict[int, Dict[int, int]]) -> None:
    for site, targets in other.items():
        table = into.setdefault(site, {})
        for target, count in targets.items():
            table[target] = table.get(target, 0) + count


@dataclass
class Profile:
    """Counted execution facts about one binary, over >= 0 runs."""

    #: Identity of the profiled binary (sha256 of its image bytes).
    #: Profiles of different binaries refuse to merge.
    image_sha256: str = ""
    #: Block start address -> times the block was entered.
    block_counts: Dict[int, int] = field(default_factory=dict)
    #: Conditional-branch site -> successor address -> times taken.
    #: Both outcomes appear (the taken target and the fall-through), so
    #: branch probabilities are ``count / sum(counts)``.
    edge_counts: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: Call-site address -> execution count (direct and indirect).
    call_counts: Dict[int, int] = field(default_factory=dict)
    #: Indirect-call site -> target -> count (the counted version of
    #: ``TraceResult.call_targets``).
    indirect_calls: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: Indirect-jump site -> target -> count.
    indirect_jumps: Dict[int, Dict[int, int]] = field(default_factory=dict)
    #: Loop header address -> {"entries": n, "iterations": m}; the
    #: average trip count is ``m / n``.
    loop_trips: Dict[int, Dict[str, int]] = field(default_factory=dict)
    runs: int = 0
    instructions: int = 0
    wall_seconds: float = 0.0

    # -- merging ------------------------------------------------------------

    def merge(self, other: "Profile") -> "Profile":
        """Sum another profile's counts into this one (in place).

        Associative and commutative up to ``wall_seconds`` float
        rounding, which is excluded from the digest anyway.
        """
        if self.image_sha256 and other.image_sha256 and \
                self.image_sha256 != other.image_sha256:
            raise ProfileError(
                f"cannot merge profiles of different binaries "
                f"({self.image_sha256[:12]} vs {other.image_sha256[:12]})")
        if not self.image_sha256:
            self.image_sha256 = other.image_sha256
        _merge_counts(self.block_counts, other.block_counts)
        _merge_histo(self.edge_counts, other.edge_counts)
        _merge_counts(self.call_counts, other.call_counts)
        _merge_histo(self.indirect_calls, other.indirect_calls)
        _merge_histo(self.indirect_jumps, other.indirect_jumps)
        for header, trips in other.loop_trips.items():
            mine = self.loop_trips.setdefault(
                header, {"entries": 0, "iterations": 0})
            mine["entries"] += trips.get("entries", 0)
            mine["iterations"] += trips.get("iterations", 0)
        self.runs += other.runs
        self.instructions += other.instructions
        self.wall_seconds += other.wall_seconds
        return self

    # -- queries ------------------------------------------------------------

    @property
    def total_block_executions(self) -> int:
        return sum(self.block_counts.values())

    def block_weight(self, addr: Optional[int]) -> int:
        if addr is None:
            return 0
        return self.block_counts.get(addr, 0)

    def hot_threshold(self) -> int:
        """The hotness cutoff: the mean count over executed blocks.

        Deterministic, scale-free and cheap; blocks at or above the
        mean are "hot" (loop bodies land far above it, straight-line
        startup code far below).
        """
        executed = [c for c in self.block_counts.values() if c > 0]
        if not executed:
            return 1
        return max(1, sum(executed) // len(executed))

    def is_hot_block(self, addr: Optional[int]) -> bool:
        return self.block_weight(addr) >= self.hot_threshold()

    def hot_blocks(self):
        """Sorted addresses of all blocks at or above the hot cutoff.

        Deterministic (sorted, count-independent order) — the tier-3
        trace JIT seeds its hotness counters from this list so that
        profiled-hot loops compile on their first taken branch instead
        of re-crossing the threshold by execution.
        """
        cutoff = self.hot_threshold()
        return sorted(addr for addr, count in self.block_counts.items()
                      if count >= cutoff)

    def edge_probability(self, site: int, successor: int) -> float:
        """P(branch at ``site`` goes to ``successor``); 0.0 unprofiled."""
        edges = self.edge_counts.get(site)
        if not edges:
            return 0.0
        total = sum(edges.values())
        if total <= 0:
            return 0.0
        return edges.get(successor, 0) / total

    def indirect_histogram(self, site: int, kind: str) -> Dict[int, int]:
        table = self.indirect_calls if kind == "call" else self.indirect_jumps
        return table.get(site, {})

    def dominant_target(self, site: int, kind: str):
        """(target, share) of the most frequent indirect target, or
        ``(None, 0.0)`` when the site was never observed."""
        histo = self.indirect_histogram(site, kind)
        total = sum(histo.values())
        if not total:
            return None, 0.0
        target = min(histo, key=lambda t: (-histo[t], t))
        return target, histo[target] / total

    def avg_trip_count(self, header: Optional[int]) -> float:
        """Mean iterations per entry of the loop headed at ``header``."""
        if header is None:
            return 0.0
        trips = self.loop_trips.get(header)
        if not trips or trips.get("entries", 0) <= 0:
            return 0.0
        return trips["iterations"] / trips["entries"]

    def to_trace_result(self):
        """The profile's indirect-target histograms in the shape the
        CFG-augmentation machinery consumes (supersedes running the
        bare ICFT tracer when a profile is already in hand)."""
        from ..core.icft_tracer import TraceResult
        return TraceResult(
            jump_targets={s: dict(t) for s, t in self.indirect_jumps.items()},
            call_targets={s: dict(t) for s, t in self.indirect_calls.items()},
            runs=self.runs, instructions=self.instructions,
            wall_seconds=self.wall_seconds)

    # -- serialisation ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "image_sha256": self.image_sha256,
            "block_counts": _counts_to_json(self.block_counts),
            "edge_counts": _histo_to_json(self.edge_counts),
            "call_counts": _counts_to_json(self.call_counts),
            "indirect_calls": _histo_to_json(self.indirect_calls),
            "indirect_jumps": _histo_to_json(self.indirect_jumps),
            "loop_trips": {str(h): {"entries": int(t.get("entries", 0)),
                                    "iterations": int(t.get("iterations", 0))}
                           for h, t in self.loop_trips.items()},
            "runs": self.runs,
            "instructions": self.instructions,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Profile":
        if data.get("format") != PROFILE_FORMAT:
            raise ProfileError(
                f"not a {PROFILE_FORMAT} file (format="
                f"{data.get('format')!r})")
        if data.get("version") != PROFILE_VERSION:
            raise ProfileError(
                f"profile version {data.get('version')!r} is not "
                f"{PROFILE_VERSION!r}; re-collect the profile")
        return cls(
            image_sha256=data.get("image_sha256", ""),
            block_counts=_counts_from_json(data.get("block_counts")),
            edge_counts=_histo_from_json(data.get("edge_counts")),
            call_counts=_counts_from_json(data.get("call_counts")),
            indirect_calls=_histo_from_json(data.get("indirect_calls")),
            indirect_jumps=_histo_from_json(data.get("indirect_jumps")),
            loop_trips={int(h): {"entries": int(t.get("entries", 0)),
                                 "iterations": int(t.get("iterations", 0))}
                        for h, t in (data.get("loop_trips") or {}).items()},
            runs=int(data.get("runs", 0)),
            instructions=int(data.get("instructions", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "Profile":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ProfileError(f"cannot read profile {path!r}: {exc}")
        return cls.from_json(data)

    def digest(self) -> str:
        """Content digest over the canonical JSON rendering.

        Stable across processes and ``PYTHONHASHSEED`` values (keys are
        sorted; no set iteration feeds the hash).  ``wall_seconds`` is
        excluded: two collections of the same execution must key the
        same artifact-cache entries regardless of host speed.
        """
        payload = self.to_json()
        del payload["wall_seconds"]
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # -- reporting ----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for ``polynima profile show``."""
        indirect_sites = len(self.indirect_calls) + len(self.indirect_jumps)
        return {
            "version": PROFILE_VERSION,
            "digest": self.digest(),
            "image_sha256": self.image_sha256,
            "runs": self.runs,
            "instructions": self.instructions,
            "wall_seconds": round(self.wall_seconds, 6),
            "blocks_profiled": len(self.block_counts),
            "block_executions": self.total_block_executions,
            "hot_threshold": self.hot_threshold(),
            "hot_blocks": sum(
                1 for c in self.block_counts.values()
                if c >= self.hot_threshold()),
            "branch_sites": len(self.edge_counts),
            "call_sites": len(self.call_counts),
            "indirect_sites": indirect_sites,
            "loops": len(self.loop_trips),
        }

    def hottest_blocks(self, limit: int = 10):
        """[(addr, count)] sorted by descending count, address ties low."""
        ranked = sorted(self.block_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:limit]
