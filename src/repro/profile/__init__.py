"""Feedback-directed optimisation (PGO) for the hybrid recompiler.

Collect a profile from concrete emulated executions of the original
binary, persist/merge it, and feed it back into recompilation:

>>> from repro.profile import ProfileCollector
>>> profile = ProfileCollector(image).collect(lambda _: make_library())
>>> result = hybrid_recompile(workload, opt_level=2, profile=profile)

See ``docs/PGO.md`` for the full workflow and knobs.
"""

from .collector import ProfileCollector
from .costmodel import (CostGuidedUnroll, expected_function_cost,
                        instruction_cost)
from .format import PROFILE_FORMAT, PROFILE_VERSION, Profile, ProfileError
from .guide import ProfileGuide

__all__ = [
    "PROFILE_FORMAT", "PROFILE_VERSION",
    "CostGuidedUnroll", "Profile", "ProfileCollector", "ProfileError",
    "ProfileGuide", "expected_function_cost", "instruction_cost",
]
