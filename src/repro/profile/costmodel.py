"""Cost-model-verified loop unrolling.

Unrolling is the one profile-guided transform whose payoff depends on
a *downstream* decision: the register allocator.  Cloning a loop body
lengthens live ranges, and when that tips a function into spilling,
the reloads it adds to the hot loop cost far more than the back-edge
jump the unroll removes — the emulator charges every memory operand
(:data:`repro.emulator.MEMORY_ACCESS_COST`) on top of the mnemonic's
base cost.  No IR-level heuristic sees that cliff, so this module does
not guess: it *lowers* each candidate through the real backend and
prices the result with the emulator's own cost tables, weighted by the
measured block counts.

:class:`CostGuidedUnroll` drives the trials.  For every loop that
:class:`~repro.passes.loops.LoopUnroll` considers unrollable it clones
the module, applies the unroll at each trial factor, re-runs the
scalar clean-up passes, lowers the affected function into a scratch
assembler, and compares the profile-weighted cycle estimate against
the un-unrolled baseline.  Only loops the model prices cheaper are
unrolled in the real module — each at its winning factor.
"""

from __future__ import annotations

import copy

from typing import Dict, Iterable, Optional, Set, Tuple

from ..emulator import BASE_COSTS, MEMORY_ACCESS_COST
from ..ir import Function, Module, natural_loops
from ..isa.assembler import Assembler, _LabelDef
from ..isa.instructions import Mem
from ..passes import standard_pipeline
from ..passes.loops import LoopUnroll
from .guide import ProfileGuide


def instruction_cost(instr) -> float:
    """Static cycle price of one assembled instruction — the same
    ``base + per-memory-operand`` charge the emulator levies."""
    cost = BASE_COSTS.get(instr.mnemonic, 1)
    for op in instr.operands:
        if isinstance(op, Mem):
            cost += MEMORY_ACCESS_COST
    return cost


def expected_function_cost(fn: Function, module: Module, image,
                           guide: ProfileGuide,
                           scaled_blocks: Set[str] = frozenset(),
                           factor: int = 1) -> float:
    """Profile-weighted cycle estimate of ``fn``'s lowered body.

    Lowers ``fn`` through the real backend (critical-edge splitting,
    allocation, peephole) into a scratch assembler, then sums
    ``weight(block) * cost(instr)`` over the emitted stream, walking
    the block labels to attribute instructions.  Blocks named in
    ``scaled_blocks`` — an unrolled loop's header and latch — and the
    ``.unroll`` clones count ``1/factor`` of their measured weight,
    since each copy executes that fraction of the original
    iterations.

    Lowering mutates ``fn`` (edge splits), so callers pass a clone.
    """
    from ..core.lowering import FunctionLowering
    from ..core.runtime import PTEXT_BASE, RecompiledBinaryBuilder

    builder = RecompiledBinaryBuilder(module, image)
    builder._layout_rtdata()
    asm = Assembler(base=PTEXT_BASE)
    lowering = FunctionLowering(
        fn, module, asm, builder.fn_labels[fn.name], builder.global_addrs,
        builder.output.import_slot, builder.fn_labels, pgo=guide)
    lowering.lower()
    asm.peephole()

    weights = {block.name: weight
               for block, weight in lowering._pgo_weights.items()}
    if not weights:     # tiny function: layout planning skipped weights
        weights = {block.name: weight
                   for block, weight in guide.ir_block_weights(fn).items()}
    entry_weight = weights.get(fn.blocks[0].name, 0) if fn.blocks else 0

    def block_weight(name: str) -> float:
        weight = weights.get(name, entry_weight)   # epilogues run per call
        if name in scaled_blocks or ".unroll" in name:
            weight /= max(1, factor)
        return weight

    prefix = f"L_{fn.name}_"
    current = float(entry_weight)
    total = 0.0
    for item in asm.stream():
        if isinstance(item, _LabelDef):
            if item.name.startswith(prefix):
                current = block_weight(item.name[len(prefix):])
        elif hasattr(item, "mnemonic"):
            total += current * instruction_cost(item)
    return total


class CostGuidedUnroll:
    """Trial-driven unrolling: keep only what the cost model prices in.

    ``factors`` are tried per candidate; the cheapest estimate wins if
    it beats the baseline by at least ``1 - margin``.  Estimates are
    per-loop (each trial unrolls exactly one loop in a module clone),
    which prices allocator pressure from that loop alone; concurrent
    unrolls in one function are assumed independent.
    """

    def __init__(self, image, guide: ProfileGuide,
                 factors: Iterable[int] = (2, 4),
                 margin: float = 0.998) -> None:
        self.image = image
        self.guide = guide
        self.factors = tuple(factors)
        self.margin = margin
        #: Guide without counters: trials must not pollute ``pgo.*``.
        self._silent = ProfileGuide(guide.profile)

    def run(self, module: Module) -> bool:
        """Trial every unroll candidate; apply the winners.  True when
        the module changed."""
        probe = LoopUnroll(profile=self._silent)
        decisions: Dict[Tuple[str, str], int] = {}
        for fn in module.functions:
            candidates = [loop.header.name for loop in natural_loops(fn)
                          if probe._candidate(fn, loop) is not None]
            if not candidates:
                continue
            base = self._trial(module, fn.name, None, 0)
            for header_name in candidates:
                best: Optional[Tuple[float, int]] = None
                for factor in self.factors:
                    est = self._trial(module, fn.name, header_name, factor)
                    self.guide.count("unroll_trials")
                    if est < base * self.margin and \
                            (best is None or est < best[0]):
                        best = (est, factor)
                if best is not None:
                    decisions[(fn.name, header_name)] = best[1]
                else:
                    self.guide.count("unrolls_rejected_by_cost_model")
        if not decisions:
            return False
        return LoopUnroll(profile=self.guide,
                          select=decisions).run_module(module)

    # -- one trial --------------------------------------------------------

    def _trial(self, module: Module, fn_name: str,
               header_name: Optional[str], factor: int) -> float:
        """Estimated cycles of ``fn_name`` with one loop unrolled at
        ``factor`` (or the baseline when ``header_name`` is None)."""
        clone = copy.deepcopy(module)
        fn = next(f for f in clone.functions if f.name == fn_name)
        scaled: Set[str] = set()
        if header_name is not None:
            loop = next((l for l in natural_loops(fn)
                         if l.header.name == header_name), None)
            if loop is None:
                return float("inf")
            probe = LoopUnroll(profile=self._silent)
            candidate = probe._candidate(fn, loop)
            if candidate is None:
                return float("inf")
            scaled = {candidate[0].name, candidate[1].name}
            if not probe._unroll(fn, loop, factor):
                return float("inf")
            self._cleanup(fn, clone)
        return expected_function_cost(fn, clone, self.image, self._silent,
                                      scaled_blocks=scaled, factor=factor)

    @staticmethod
    def _cleanup(fn: Function, module: Module) -> None:
        """Re-run the scalar clean-ups on the trial clone, confined to
        ``fn``, mirroring what the real pipeline does after unrolling
        so the trial prices the code the backend will actually see."""
        for _ in range(2):
            changed = False
            for pass_ in standard_pipeline().passes:
                changed |= pass_.run_function(fn, module)
            if not changed:
                break
