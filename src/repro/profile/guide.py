"""Profile policy: turns raw counts into optimisation decisions.

A :class:`ProfileGuide` wraps a :class:`~repro.profile.format.Profile`
and answers the questions the pipeline's consumers actually ask —
"is this block hot?", "which indirect target should be tested first?",
"how should blocks be laid out?" — so the consumers (inliner, lifter,
loop unroller, lowering) stay free of counting details.  Every
affirmative decision is counted under a ``pgo.*`` observability
counter so benchmarks and smoke tests can assert the profile was
actually consulted.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .format import Profile


class ProfileGuide:
    """Decision layer over a profile, shared by all PGO consumers."""

    def __init__(self, profile: Profile, counters=None) -> None:
        self.profile = profile
        self.counters = counters
        self._hot_threshold = profile.hot_threshold()

    # -- bookkeeping --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Bump ``pgo.<name>`` when a counters registry is attached."""
        if self.counters is not None:
            self.counters.inc(f"pgo.{name}", amount)

    # -- hotness ------------------------------------------------------------

    def block_weight(self, addr: Optional[int]) -> int:
        return self.profile.block_weight(addr)

    def is_hot(self, addr: Optional[int]) -> bool:
        return self.profile.block_weight(addr) >= self._hot_threshold

    def weight_fraction(self, addr: Optional[int]) -> float:
        """This block's share of all executed block entries.

        Complements :meth:`is_hot` for skewed profiles: one mega-hot
        loop drags the mean threshold above blocks that still carry
        percents of the execution.
        """
        total = sum(self.profile.block_counts.values())
        if not total:
            return 0.0
        return self.profile.block_weight(addr) / total

    def call_block_hot(self, block) -> bool:
        """Is the IR block containing a call site hot?

        Inlined/synthesised blocks without an origin address inherit
        coldness — only measured heat unlocks the aggressive knobs.
        """
        return self.is_hot(getattr(block, "origin_addr", None))

    # -- indirect-target promotion ------------------------------------------

    def ordered_targets(self, site: int, kind: str,
                        targets: Iterable[int]) -> List[int]:
        """Targets ordered hottest-first for guarded promotion.

        The lifter emits one compare-and-branch per candidate target in
        this order, so putting the dominant traced target first *is*
        the devirtualisation: the hot path pays a single compare and
        the rest remain as the fallback chain.  Unobserved targets sort
        after observed ones, by address, keeping output deterministic.
        """
        histo = self.profile.indirect_histogram(site, kind)
        ranked = sorted(targets,
                        key=lambda t: (-histo.get(t, 0), t))
        if histo and len(ranked) > 1 and histo.get(ranked[0], 0) > 0:
            self.count("indirect_sites_promoted")
        return ranked

    # -- branches and layout -------------------------------------------------

    def edge_probability(self, site: int, successor: int) -> float:
        return self.profile.edge_probability(site, successor)

    def avg_trip(self, header: Optional[int]) -> float:
        return self.profile.avg_trip_count(header)

    def ir_block_weights(self, fn) -> Dict[object, int]:
        """Execution weight per IR block of ``fn``.

        Blocks lifted from guest code carry ``origin_addr`` and take
        their measured count.  Synthesised blocks (critical-edge
        splits, miss blocks, inline clones) have no address; they
        inherit the weight of their hottest *successor* by fixpoint, so
        e.g. a split edge into a loop header is as hot as the header
        while a control-flow miss block (whose successors go nowhere)
        stays cold.  Deterministic: iteration order is function order.
        """
        weights: Dict[object, int] = {}
        unknown = []
        for block in fn.blocks:
            addr = block.origin_addr
            if addr is not None and addr in self.profile.block_counts:
                weights[block] = self.profile.block_counts[addr]
            else:
                weights[block] = 0
                unknown.append(block)
        # Fixpoint over the unmeasured blocks: bounded by the longest
        # chain of synthesised blocks, itself bounded by block count.
        for _round in range(len(fn.blocks)):
            changed = False
            for block in unknown:
                best = 0
                for succ in block.successors():
                    best = max(best, weights.get(succ, 0))
                if best > weights[block]:
                    weights[block] = best
                    changed = True
            if not changed:
                break
        return weights
