"""Execution-profile collection over the emulator.

The collector generalises the ICFT tracer (§3.2): where the tracer
records only indirect-branch *targets*, the collector keeps everything
a feedback-directed recompilation can use — per-block execution
counts, taken/not-taken edge counts at branches, call-site counts,
counted indirect-target histograms and loop trip summaries — all from
the same one-concrete-emulated-execution-per-input the hybrid pipeline
already pays for.

It is built on two existing emulator hooks and changes no emulator
code paths of its own:

* ``Machine.step_hook`` fires once per retired instruction, on both
  the ``fast`` and ``reference`` engines (the fast engine drops to its
  hook-preserving single-step path when a hook is installed), and
  composes with an attached sanitizer.  With no collector attached the
  emulator's hot loop is untouched, so bit-determinism of unprofiled
  runs is preserved by construction.
* ``Machine.indirect_hooks`` fires on indirect jumps/calls, exactly as
  for :class:`repro.core.icft_tracer.ICFTTracer`.

Import stubs never reach ``step_hook`` (external calls short-circuit
before decode), so external library time is invisible to the profile —
counts describe guest code only.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Optional, Sequence

from ..binfmt import Image
from ..core.cfg import RecoveredCFG
from ..core.disassembler import Disassembler
from ..emulator import EmulationFault, Machine
from ..isa.instructions import CONDITIONAL_JUMPS
from .format import Profile

#: Mnemonics after which the next instruction executed by the same
#: thread defines a control-flow edge worth counting.  Conditional
#: jumps give taken/not-taken probabilities; ``jmp`` is included so
#: unconditional loop latches still contribute back-edge (trip) counts.
_EDGE_SOURCES = frozenset(CONDITIONAL_JUMPS) | {"jmp"}


class ProfileCollector:
    """Collects an execution :class:`Profile` for one binary image."""

    def __init__(self, image: Image, cfg: Optional[RecoveredCFG] = None):
        self.image = image
        self.image_sha256 = hashlib.sha256(image.to_bytes()).hexdigest()
        if cfg is None:
            cfg = Disassembler(image).recover()
        self.cfg = cfg
        #: Static block-start addresses; block counts are recorded only
        #: at these so the profile maps 1:1 onto lifted IR blocks.
        self.block_starts = frozenset(
            addr for fn in cfg.functions.values() for addr in fn.blocks)

    def collect(self, library_factory, inputs: Sequence = (None,),
                seed: int = 0, max_cycles: int = 200_000_000,
                engine: str = "fast", sanitizer_factory=None) -> Profile:
        """Profile one execution per element of ``inputs``.

        Mirrors :meth:`ICFTTracer.trace`: ``library_factory(item)``
        returns a fresh :class:`ExternalLibrary` for that input, and
        run ``index`` uses ``seed + index``.  ``sanitizer_factory()``
        (optional) builds a fresh sanitizer per run, demonstrating that
        profiling composes with race detection.
        """
        profile = Profile(image_sha256=self.image_sha256)
        for index, item in enumerate(inputs):
            sanitizer = sanitizer_factory() if sanitizer_factory else None
            run = self.collect_once(
                library_factory(item), seed=seed + index,
                max_cycles=max_cycles, engine=engine, sanitizer=sanitizer)
            profile.merge(run)
        return profile

    def collect_once(self, library, seed: int = 0,
                     max_cycles: int = 200_000_000, engine: str = "fast",
                     sanitizer=None) -> Profile:
        """Run the image once with profiling hooks installed."""
        profile = Profile(image_sha256=self.image_sha256, runs=1)
        machine = Machine(self.image, library, seed=seed,
                          engine=engine, sanitizer=sanitizer)

        block_starts = self.block_starts
        block_counts = profile.block_counts
        edge_counts = profile.edge_counts
        call_counts = profile.call_counts
        # Per-thread pending branch site: the edge a branch took is the
        # address of the *next* instruction that thread retires, so the
        # site is parked here until then.  Keyed by tid, the bookkeeping
        # survives preemption — another thread's steps cannot resolve
        # this thread's branch.
        pending: Dict[int, int] = {}

        def step_hook(machine_, thread, instr):
            addr = instr.address
            site = pending.pop(thread.tid, None)
            if site is not None:
                edges = edge_counts.setdefault(site, {})
                edges[addr] = edges.get(addr, 0) + 1
            if addr in block_starts:
                block_counts[addr] = block_counts.get(addr, 0) + 1
            mnemonic = instr.mnemonic
            if mnemonic in _EDGE_SOURCES:
                pending[thread.tid] = addr
            elif mnemonic == "call":
                call_counts[addr] = call_counts.get(addr, 0) + 1

        def indirect_hook(machine_, thread, source, target, kind):
            table = (profile.indirect_calls if kind == "call"
                     else profile.indirect_jumps)
            histo = table.setdefault(source, {})
            histo[target] = histo.get(target, 0) + 1

        machine.step_hook = step_hook
        machine.indirect_hooks.append(indirect_hook)
        started = time.perf_counter()
        try:
            machine.run(max_cycles=max_cycles)
        except EmulationFault:
            # Like the tracer: a crashing input still contributes the
            # counts it accumulated before faulting.
            pass
        profile.wall_seconds = time.perf_counter() - started
        profile.instructions = machine.instructions
        self._summarise_loops(profile)
        return profile

    def _summarise_loops(self, profile: Profile) -> None:
        """Reduce raw edge counts to per-header trip summaries.

        A back edge is a counted edge whose destination is a block
        start at or before the branch site (natural-loop approximation
        over the address-ordered layout the compiler emits).  Entries
        are what remains of the header's executions once back-edge
        arrivals are subtracted.
        """
        iterations: Dict[int, int] = {}
        for site, edges in profile.edge_counts.items():
            for dest, count in edges.items():
                if dest <= site and dest in self.block_starts:
                    iterations[dest] = iterations.get(dest, 0) + count
        for header, iters in iterations.items():
            entries = max(0, profile.block_counts.get(header, 0) - iters)
            profile.loop_trips[header] = {
                "entries": entries, "iterations": iters}
