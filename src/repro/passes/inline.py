"""Function inlining.

Used in two places: as a size/benefit-driven optimisation during
recompilation (only for functions proven not to be external entry
points, §3.3.3), and exhaustively by the spinloop detector which
"recursively inlines all lifted functions in the body of their callers
to enable data flow tracking across procedure calls" (§3.4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir import (Argument, Block, Br, Call, ConstantInt, Function,
                  GlobalVar, Instruction, Module, Phi, Ret, Unreachable,
                  replace_all_uses)
from .manager import Pass


def clone_function_body(fn: Function, value_map: Dict,
                        into: Function, suffix: str) -> List[Block]:
    """Clone ``fn``'s blocks into ``into``; returns the new blocks.

    ``value_map`` must pre-map every :class:`Argument` of ``fn``.
    """
    block_map: Dict[Block, Block] = {}
    new_blocks: List[Block] = []
    for block in fn.blocks:
        clone = into.add_block(f"{block.name}.{suffix}")
        clone.origin_addr = block.origin_addr
        block_map[block] = clone
        new_blocks.append(clone)

    import copy
    for block in fn.blocks:
        clone = block_map[block]
        for instr in block.instructions:
            new_instr = copy.copy(instr)
            new_instr.operands = list(instr.operands)
            new_instr.tags = set(instr.tags)
            new_instr.name = f"{instr.name}.{suffix}"
            if isinstance(instr, Phi):
                new_instr.incoming_blocks = [
                    block_map.get(b, b) for b in instr.incoming_blocks]
            for attr in ("target", "if_true", "if_false", "default"):
                if hasattr(new_instr, attr):
                    setattr(new_instr, attr,
                            block_map.get(getattr(new_instr, attr),
                                          getattr(new_instr, attr)))
            if hasattr(new_instr, "cases"):
                new_instr.cases = [(v, block_map.get(b, b))
                                   for v, b in new_instr.cases]
            if isinstance(new_instr, Call) and not new_instr.is_external:
                new_instr.callee = value_map.get(new_instr.callee,
                                                 new_instr.callee)
            value_map[instr] = new_instr
            clone.append(new_instr)

    # Remap operands.
    for clone in new_blocks:
        for instr in clone.instructions:
            for i, op in enumerate(instr.operands):
                instr.operands[i] = value_map.get(op, op)
    return new_blocks


def inline_call(call: Call, module: Module) -> bool:
    """Inline one direct internal call site.  Returns True on success."""
    if call.is_external:
        return False
    callee: Function = call.callee
    caller: Function = call.parent.parent
    if callee is caller or not callee.blocks:
        return False

    block = call.parent
    index = block.instructions.index(call)

    # Split the containing block after the call.
    cont = caller.add_block(f"{block.name}.cont")
    for instr in list(block.instructions[index + 1:]):
        block.remove(instr)
        cont.append(instr)
    # Phis in successors must now name the continuation block.
    for succ in cont.successors():
        for phi in succ.phis():
            for i, pred in enumerate(phi.incoming_blocks):
                if pred is block:
                    phi.incoming_blocks[i] = cont
    block.remove(call)

    value_map: Dict = {}
    for param, arg in zip(callee.params, call.operands):
        value_map[param] = arg
    # The suffix must be derived from stable facts about the call site,
    # never from object identity: cloned names feed name-ordered
    # decisions downstream (loop block ordering, exit sorting), and
    # recompilation promises bit-identical output across processes.
    # (block name, instruction index) is unique per inlined site — the
    # call is removed as part of inlining, so it cannot recur.
    suffix = f"inl.{block.name}.{index}"
    new_blocks = clone_function_body(callee, value_map, caller, suffix)
    entry_clone = new_blocks[0]
    block.append(Br(entry_clone))

    # Rewire returns to the continuation; merge return values via phi.
    ret_sites: List = []
    for clone in new_blocks:
        term = clone.terminator
        if isinstance(term, Ret):
            ret_sites.append((clone, term.value))
            clone.remove(term)
            clone.append(Br(cont))
    if not ret_sites:
        # Callee never returns; continuation unreachable.
        cont_term = cont.terminator
        if cont_term is None:
            cont.append(Unreachable())
    from ..ir import VoidType
    if isinstance(call.type, VoidType):
        return True
    values = [v for _, v in ret_sites if v is not None]
    if values:
        if len(ret_sites) == 1:
            replace_all_uses(caller, call, values[0])
        else:
            phi = Phi(call.type, name=f"retval.{suffix}")
            for site, value in ret_sites:
                phi.add_incoming(value if value is not None
                                 else ConstantInt(0, call.type), site)
            cont.insert(0, phi)
            replace_all_uses(caller, call, phi)
    else:
        replace_all_uses(caller, call, ConstantInt(0, call.type))
    return True


class Inliner(Pass):
    """Inlines calls to internal functions.

    ``only_single_use`` restricts to functions with exactly one call
    site (safe size-wise); ``max_blocks`` bounds callee size otherwise.
    ``respect_visibility`` skips external-visible functions (they must
    survive as callback entry points until the callback analysis clears
    them).

    With a :class:`repro.profile.ProfileGuide` attached, call sites in
    measured-hot blocks use the ``hot_max_blocks`` size budget instead:
    the call/ret + prologue/epilogue overhead is paid on every
    execution there, so a bigger callee is worth duplicating.  Cold
    sites keep the unguided threshold, bounding code growth.
    """

    name = "inline"

    def __init__(self, max_blocks: int = 8, respect_visibility: bool = True,
                 exhaustive: bool = False, profile=None,
                 hot_max_blocks: int = 32) -> None:
        self.max_blocks = max_blocks
        self.respect_visibility = respect_visibility
        self.exhaustive = exhaustive
        self.profile = profile          # a ProfileGuide, despite the name
        self.hot_max_blocks = hot_max_blocks

    def _size_budget(self, call: Call) -> int:
        """Callee-size cap for one call site."""
        if self.profile is not None and \
                self.profile.call_block_hot(call.parent):
            return max(self.max_blocks, self.hot_max_blocks)
        return self.max_blocks

    def run_module(self, module: Module) -> bool:
        """Inline eligible call sites across the module bottom-up."""
        changed = False
        progress = True
        rounds = 0
        while progress and rounds < (50 if self.exhaustive else 3):
            progress = False
            rounds += 1
            for fn in list(module.functions):
                for call in [i for i in fn.instructions()
                             if isinstance(i, Call) and not i.is_external]:
                    callee = call.callee
                    if callee not in module.functions:
                        continue
                    if self._recursive(callee):
                        continue
                    boosted = False
                    if not self.exhaustive:
                        if self.respect_visibility and callee.external_visible:
                            continue
                        budget = self._size_budget(call)
                        if len(callee.blocks) > budget:
                            continue
                        boosted = len(callee.blocks) > self.max_blocks
                    if inline_call(call, module):
                        progress = True
                        changed = True
                        if boosted:
                            self.profile.count("hot_inlines")
        return changed

    @staticmethod
    def _recursive(fn: Function) -> bool:
        for instr in fn.instructions():
            if isinstance(instr, Call) and not instr.is_external \
                    and instr.callee is fn:
                return True
        return False
