"""Pass manager for Poly IR transformations.

When given a :class:`~repro.observability.Tracer` and/or
:class:`~repro.observability.Counters`, the manager instruments every
pass execution with its wall time and IR delta (instructions/blocks
before → after), emitting ``pass.<name>`` spans and ``pass.<name>.*``
counters per the conventions in ``docs/OBSERVABILITY.md``.  A list of
:class:`PassRunRecord` is kept either way, so callers can inspect
which pass did the work without re-deriving sizes by hand.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..ir import Function, Module, verify_module
from ..observability import Counters, Tracer


class Pass:
    """Base class; subclasses implement run_function or run_module."""

    name = "pass"

    def run_module(self, module: Module) -> bool:
        """Run the pass over a module (default: per function)."""
        changed = False
        for fn in module.functions:
            if fn.blocks:
                changed |= self.run_function(fn, module)
        return changed

    def run_function(self, fn: Function, module: Module) -> bool:
        """Run the pass over one function; override in subclasses."""
        raise NotImplementedError


def module_size(module: Module) -> Tuple[int, int]:
    """(blocks, instructions) across every function — the IR-delta
    measure the per-pass records are built from."""
    blocks = 0
    instrs = 0
    for fn in module.functions:
        blocks += len(fn.blocks)
        for block in fn.blocks:
            instrs += len(block.instructions)
    return blocks, instrs


@dataclass
class PassRunRecord:
    """One pass execution: what it cost and what it did to the IR."""
    pass_name: str
    iteration: int
    seconds: float
    changed: bool
    blocks_before: int
    blocks_after: int
    instrs_before: int
    instrs_after: int

    @property
    def instr_delta(self) -> int:
        """Instructions removed (positive) or added (negative)."""
        return self.instrs_before - self.instrs_after


class PassManager:
    """Runs a pipeline of passes, optionally verifying after each.

    ``tracer``/``counters`` hook the run into the observability layer;
    ``records`` always accumulates one :class:`PassRunRecord` per pass
    execution (cleared at the start of each :meth:`run`).
    """

    def __init__(self, passes: Sequence[Pass] = (), verify: bool = False,
                 max_iterations: int = 1,
                 tracer: Optional[Tracer] = None,
                 counters: Optional[Counters] = None) -> None:
        self.passes: List[Pass] = list(passes)
        self.verify = verify
        self.max_iterations = max_iterations
        self.tracer = tracer
        self.counters = counters
        self.records: List[PassRunRecord] = []

    def add(self, pass_: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def _run_one(self, pass_: Pass, module: Module, iteration: int) -> bool:
        blocks_before, instrs_before = module_size(module)
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(f"pass.{pass_.name}",
                                     iteration=iteration,
                                     blocks_before=blocks_before,
                                     instrs_before=instrs_before)
        started = time.perf_counter()
        changed = False
        try:
            changed = pass_.run_module(module)
        finally:
            seconds = time.perf_counter() - started
            blocks_after, instrs_after = module_size(module)
            if span is not None:
                span.args.update(blocks_after=blocks_after,
                                 instrs_after=instrs_after,
                                 changed=changed)
                self.tracer.end(span)
        record = PassRunRecord(
            pass_name=pass_.name, iteration=iteration, seconds=seconds,
            changed=changed, blocks_before=blocks_before,
            blocks_after=blocks_after, instrs_before=instrs_before,
            instrs_after=instrs_after)
        self.records.append(record)
        if self.counters is not None:
            base = f"pass.{pass_.name}"
            self.counters.inc(f"{base}.runs")
            self.counters.inc(f"{base}.seconds", seconds)
            self.counters.inc(f"{base}.instrs_removed", record.instr_delta)
            self.counters.inc(f"{base}.blocks_removed",
                              blocks_before - blocks_after)
        return changed

    def run(self, module: Module) -> bool:
        """Run all passes in order, iterating until stable or the cap."""
        self.records = []
        changed_any = False
        for iteration in range(self.max_iterations):
            changed = False
            for pass_ in self.passes:
                if self._run_one(pass_, module, iteration):
                    changed = True
                    if self.verify:
                        try:
                            verify_module(module)
                        except Exception as exc:
                            raise RuntimeError(
                                f"IR broken after pass {pass_.name}: {exc}"
                            ) from exc
            changed_any |= changed
            if not changed:
                break
        return changed_any
