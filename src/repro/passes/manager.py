"""Pass manager for Poly IR transformations."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..ir import Function, Module, verify_module


class Pass:
    """Base class; subclasses implement run_function or run_module."""

    name = "pass"

    def run_module(self, module: Module) -> bool:
        """Run the pass over a module (default: per function)."""
        changed = False
        for fn in module.functions:
            if fn.blocks:
                changed |= self.run_function(fn, module)
        return changed

    def run_function(self, fn: Function, module: Module) -> bool:
        """Run the pass over one function; override in subclasses."""
        raise NotImplementedError


class PassManager:
    """Runs a pipeline of passes, optionally verifying after each."""

    def __init__(self, passes: Sequence[Pass] = (), verify: bool = False,
                 max_iterations: int = 1) -> None:
        self.passes: List[Pass] = list(passes)
        self.verify = verify
        self.max_iterations = max_iterations

    def add(self, pass_: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes in order, iterating until stable or the cap."""
        changed_any = False
        for _ in range(self.max_iterations):
            changed = False
            for pass_ in self.passes:
                if pass_.run_module(module):
                    changed = True
                    if self.verify:
                        try:
                            verify_module(module)
                        except Exception as exc:
                            raise RuntimeError(
                                f"IR broken after pass {pass_.name}: {exc}"
                            ) from exc
            changed_any |= changed
            if not changed:
                break
        return changed_any
