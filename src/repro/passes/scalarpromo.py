"""Loop scalar promotion (LLVM's LICM promoteLoopAccessesToScalars).

O0-compiled code round-trips every local through its stack slot on
every loop iteration.  Block-local load/store elimination cannot remove
the loop-carried traffic; promotion can: when every access to a
location inside a loop is a plain (non-atomic) load/store to the *same*
symbolic address, nothing else in the loop may alias it, and the loop
contains no barriers, the location is promoted to an SSA value — a
preheader load, a header phi, and write-backs on the exit edges.

Safety arguments, mirroring the paper's:

* the promoted locations are emulated-stack slots (or IR globals),
  which are **thread-exclusive** — no other thread can observe the
  deferred stores (§3.3.4's stack-exclusivity);
* speculative preheader loads are safe: the emulated stack and the
  virtual-state globals are always mapped;
* barriers (fences/calls/atomics) in the loop veto promotion, so the
  pass stays fence-gated exactly like the other memory optimisations —
  this is a large part of what the §3.4 fence removal "unlocks".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (AtomicRMW, BinOp, Block, Call, Cmpxchg, CompilerBarrier,
                  ConstantInt, Fence, Function, GlobalVar, Instruction,
                  Load, Loop, Module, Phi, Store, const, natural_loops,
                  predecessors, replace_all_uses)
from .alias import AddrKey, access_is_stack, may_alias, symbolic_addr
from .manager import Pass


class ScalarPromotion(Pass):
    """Keep a loop-invariant thread-exclusive location in a register across a loop (load before, phi inside, store after)."""
    name = "scalar-promotion"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Promote eligible locations in each natural loop."""
        changed = False
        # Innermost-first: natural_loops returns arbitrary order; sort
        # by body size so small (inner) loops promote first.
        for loop in sorted(natural_loops(fn), key=lambda l: len(l.blocks)):
            changed |= self._promote_loop(fn, loop)
        return changed

    # -- per-loop -----------------------------------------------------------

    def _promote_loop(self, fn: Function, loop: Loop) -> bool:
        preds = predecessors(fn)
        outside = [p for p in preds[loop.header] if p not in loop.blocks]
        if len(outside) != 1 or len(outside[0].successors()) != 1:
            return False        # needs LoopSimplify's preheader
        preheader = outside[0]
        exits = loop.exit_edges()
        if not exits:
            return False
        # Dedicated exits required so the write-back runs only when the
        # loop actually executed.
        exit_blocks = {dst for _src, dst in exits}
        for dst in exit_blocks:
            if any(p not in loop.blocks for p in preds[dst]):
                return False

        candidates = self._candidates(loop)
        if not candidates:
            return False

        changed = False
        for key, accesses in candidates.items():
            changed |= self._promote_location(fn, loop, preheader,
                                              exit_blocks, key, accesses)
        return changed

    # -- candidate discovery -----------------------------------------------------

    def _candidates(self, loop: Loop):
        """Locations safe to promote: same symbolic address for every
        access, address computable at the preheader, no barriers in the
        loop, and no other access may-aliasing the location."""
        barriers = False
        accesses: Dict[AddrKey, List[Instruction]] = {}
        all_accesses: List[Instruction] = []
        for block in loop.blocks:
            for instr in block.instructions:
                if isinstance(instr, (Fence, CompilerBarrier, Call,
                                      Cmpxchg, AtomicRMW)):
                    barriers = True
                    break
                if isinstance(instr, Load):
                    if instr.ordering is not None:
                        barriers = True
                        break
                    all_accesses.append(instr)
                elif isinstance(instr, Store):
                    if instr.ordering is not None:
                        barriers = True
                        break
                    all_accesses.append(instr)
            if barriers:
                break
        if barriers:
            return {}

        for instr in all_accesses:
            key = symbolic_addr(instr.addr)
            accesses.setdefault((key, instr.width), []).append(instr)

        result = {}
        for (key, width), group in accesses.items():
            kind, root, _offset = key
            # Only thread-exclusive storage: emulated-stack slots and
            # module globals (virtual state is per-thread by design).
            if not (kind == "global"
                    or all(access_is_stack(i) for i in group)):
                continue
            # Uniform width, and an address value usable from the
            # preheader.
            if any(i.width != width for i in group):
                continue
            addr_value = self._preheader_addr(loop, group)
            if addr_value is None:
                continue
            # No *other* access in the loop may alias this location.
            stack = access_is_stack(group[0])
            clean = True
            for other in all_accesses:
                if other in group:
                    continue
                other_key = symbolic_addr(other.addr)
                if may_alias(key, width, stack, other_key, other.width,
                             access_is_stack(other)):
                    clean = False
                    break
            if clean:
                result[(key, width, addr_value)] = group
        return result

    @staticmethod
    def _preheader_addr(loop: Loop, group) -> Optional[object]:
        """An address operand whose definition dominates the preheader
        (constants/globals always; instructions defined outside)."""
        for instr in group:
            addr = instr.addr
            if isinstance(addr, (ConstantInt, GlobalVar)):
                return addr
            if isinstance(addr, Instruction) and \
                    addr.parent not in loop.blocks:
                return addr
        return None

    # -- the transformation ----------------------------------------------------------

    def _promote_location(self, fn: Function, loop: Loop, preheader: Block,
                          exit_blocks: Set[Block], key_info,
                          accesses) -> bool:
        _key, width, addr_value = key_info
        loads = [i for i in accesses if isinstance(i, Load)]
        stores = [i for i in accesses if isinstance(i, Store)]
        if not loads and not stores:
            return False
        if not stores:
            # Read-only location: a plain preheader load suffices.
            init = Load(addr_value, width, name="promo.ro")
            init.tags |= set(loads[0].tags)
            preheader.insert(len(preheader.instructions) - 1, init)
            for load in loads:
                replace_all_uses(fn, load, init)
                load.parent.remove(load)
            return True

        # General case: preheader load + per-block SSA renaming of the
        # location, phis at the header and at join points inside the
        # loop, write-back in every dedicated exit block.
        init = Load(addr_value, width, name="promo.in")
        init.tags |= set(accesses[0].tags)
        preheader.insert(len(preheader.instructions) - 1, init)

        preds = predecessors(fn)
        current: Dict[Block, object] = {}
        # Place a phi in every loop block with multiple predecessors
        # (pruned placement is an optimisation; full placement inside
        # the loop is simpler and DCE cleans the rest).
        phis: Dict[Block, Phi] = {}
        for block in loop.blocks:
            if len(preds[block]) > 1:
                phi = Phi(loads[0].type if loads else stores[0].value.type,
                          name="promo.phi")
                block.insert(0, phi)
                phis[block] = phi

        # Rewrite accesses in reverse postorder restricted to the loop,
        # so every forward predecessor is final before its successors
        # (back edges always target phi-carrying blocks).
        from ..ir import reverse_postorder
        order = [b for b in reverse_postorder(fn) if b in loop.blocks]

        for block in order:
            if block in phis:
                value = phis[block]
            else:
                inside = [p for p in preds[block] if p in loop.blocks]
                value = current.get(inside[0], init) if inside else init
            for instr in list(block.instructions):
                if instr in accesses:
                    if isinstance(instr, Load):
                        replace_all_uses(fn, instr, value)
                        block.remove(instr)
                    else:
                        value = instr.value
                        block.remove(instr)
            current[block] = value

        # Wire phi incomings.
        for block, phi in phis.items():
            for pred in preds[block]:
                if pred in loop.blocks:
                    phi.add_incoming(current.get(pred, init), pred)
                else:
                    phi.add_incoming(init, pred)

        # Write-backs on the dedicated exits.
        for exit_block in exit_blocks:
            inside = [p for p in preds[exit_block] if p in loop.blocks]
            if len(inside) == 1:
                outgoing = current.get(inside[0], init)
            else:
                phi = Phi(init.type, name="promo.out")
                for pred in inside:
                    phi.add_incoming(current.get(pred, init), pred)
                exit_block.insert(0, phi)
                outgoing = phi
            store = Store(outgoing, addr_value, width)
            store.tags |= set(accesses[0].tags)
            exit_block.insert(exit_block.non_phi_index(), store)
        return True
