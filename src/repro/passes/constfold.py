"""Constant folding and instruction simplification.

Folds binops/icmps/casts/selects over constants, applies algebraic
identities, folds constant conditional branches to unconditional ones,
and collapses single-value phis.  Width semantics match the VX machine:
results are truncated to the type width and kept in signed canonical
form.
"""

from __future__ import annotations

from typing import Optional

from ..ir import (BinOp, Br, Cast, CondBr, ConstantInt, Function, ICmp,
                  Instruction, Module, Phi, Select, Switch,
                  replace_all_uses)
from .manager import Pass


def _unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _signed(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if bits > 1 and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def eval_binop(op: str, a: int, b: int, bits: int) -> Optional[int]:
    """Evaluate a binop over signed-canonical constants; None if undefined."""
    ua, ub = _unsigned(a, bits), _unsigned(b, bits)
    if op == "add":
        return _signed(ua + ub, bits)
    if op == "sub":
        return _signed(ua - ub, bits)
    if op == "mul":
        return _signed(ua * ub, bits)
    if op == "sdiv":
        if b == 0:
            return None
        return _signed(int(a / b), bits)
    if op == "srem":
        if b == 0:
            return None
        quot = int(a / b)
        return _signed(a - quot * b, bits)
    if op == "and":
        return _signed(ua & ub, bits)
    if op == "or":
        return _signed(ua | ub, bits)
    if op == "xor":
        return _signed(ua ^ ub, bits)
    if op == "shl":
        return _signed(ua << (ub & 63), bits)
    if op == "lshr":
        return _signed(ua >> (ub & 63), bits)
    if op == "ashr":
        return _signed(a >> (ub & 63), bits)
    raise ValueError(op)


def eval_icmp(pred: str, a: int, b: int, bits: int) -> bool:
    """Evaluate a comparison over signed-canonical constants."""
    ua, ub = _unsigned(a, bits), _unsigned(b, bits)
    sa, sb = _signed(a, bits), _signed(b, bits)
    return {
        "eq": ua == ub, "ne": ua != ub,
        "slt": sa < sb, "sle": sa <= sb, "sgt": sa > sb, "sge": sa >= sb,
        "ult": ua < ub, "ule": ua <= ub, "ugt": ua > ub, "uge": ua >= ub,
    }[pred]


class ConstFold(Pass):
    """Constant folding, algebraic identities and offset reassociation."""
    name = "constfold"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Iterate folding over the function until a fixpoint."""
        changed = False
        again = True
        while again:
            again = False
            for block in fn.blocks:
                for instr in list(block.instructions):
                    replacement = self._simplify(instr)
                    if replacement is not None and replacement is not instr:
                        if isinstance(replacement, Instruction) and \
                                replacement.parent is None:
                            # A rewritten instruction takes the old
                            # one's position in the block.
                            index = block.instructions.index(instr)
                            block.insert(index, replacement)
                        replace_all_uses(fn, instr, replacement)
                        block.remove(instr)
                        changed = True
                        again = True
                term = block.terminator
                if isinstance(term, CondBr) and \
                        isinstance(term.cond, ConstantInt):
                    target = term.if_true if term.cond.value else term.if_false
                    dropped = term.if_false if term.cond.value else term.if_true
                    block.remove(term)
                    block.append(Br(target))
                    if dropped is not target:
                        for phi in dropped.phis():
                            phi.remove_incoming(block)
                    changed = True
                    again = True
                elif isinstance(term, CondBr) and term.if_true is term.if_false:
                    target = term.if_true
                    block.remove(term)
                    block.append(Br(target))
                    changed = True
                    again = True
                elif isinstance(term, Switch) and \
                        isinstance(term.value, ConstantInt):
                    target = term.default
                    for case_value, case_block in term.cases:
                        if case_value == term.value.value:
                            target = case_block
                            break
                    for succ in set(term.successors()):
                        if succ is not target:
                            for phi in succ.phis():
                                phi.remove_incoming(block)
                    block.remove(term)
                    block.append(Br(target))
                    changed = True
                    again = True
        return changed

    def _simplify(self, instr: Instruction):
        if isinstance(instr, BinOp):
            a, b = instr.operands
            bits = instr.type.bits
            if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
                value = eval_binop(instr.op, a.value, b.value, bits)
                if value is not None:
                    return ConstantInt(value, instr.type)
                return None
            if isinstance(b, ConstantInt):
                if b.value == 0 and instr.op in ("add", "sub", "or", "xor",
                                                 "shl", "lshr", "ashr"):
                    return a
                if b.value == 1 and instr.op in ("mul", "sdiv"):
                    return a
                if b.value == 0 and instr.op in ("mul", "and"):
                    return ConstantInt(0, instr.type)
            if isinstance(a, ConstantInt):
                if a.value == 0 and instr.op in ("add", "or", "xor"):
                    return b
                if a.value == 0 and instr.op in ("mul", "and", "shl",
                                                 "lshr", "ashr"):
                    return ConstantInt(0, instr.type)
                if a.value == 1 and instr.op == "mul":
                    return b
            if a is b:
                if instr.op in ("sub", "xor"):
                    return ConstantInt(0, instr.type)
                if instr.op in ("and", "or"):
                    return a
            # Canonicalise offset arithmetic: sub x, c -> add x, -c and
            # reassociate add(add(x, c1), c2) -> add(x, c1+c2).  This is
            # what lets balanced push/pop chains ((rsp - 8) + 8) fold to
            # rsp, collapse the loop's stack-pointer phi, and expose
            # loop-invariant frame-slot addresses to scalar promotion.
            if instr.op == "sub" and isinstance(b, ConstantInt):
                return BinOp("add", a,
                             ConstantInt(-b.value, instr.type),
                             name=instr.name)
            if instr.op == "add" and isinstance(b, ConstantInt) and                     isinstance(a, BinOp) and a.op == "add" and                     isinstance(a.operands[1], ConstantInt):
                combined = eval_binop("add", a.operands[1].value, b.value,
                                      instr.type.bits)
                return BinOp("add", a.operands[0],
                             ConstantInt(combined, instr.type),
                             name=instr.name)
            return None
        if isinstance(instr, ICmp):
            a, b = instr.operands
            if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
                bits = a.type.bits
                return ConstantInt(
                    int(eval_icmp(instr.pred, a.value, b.value, bits)),
                    instr.type)
            if a is b:
                truth = instr.pred in ("eq", "sle", "sge", "ule", "uge")
                return ConstantInt(int(truth), instr.type)
            return None
        if isinstance(instr, Cast):
            value = instr.operands[0]
            if isinstance(value, ConstantInt):
                from_bits = value.type.bits
                to_bits = instr.type.bits
                raw = _unsigned(value.value, from_bits)
                if instr.kind == "zext":
                    return ConstantInt(raw, instr.type)
                if instr.kind == "sext":
                    return ConstantInt(_signed(value.value, from_bits),
                                       instr.type)
                if instr.kind == "trunc":
                    return ConstantInt(_signed(raw, to_bits), instr.type)
            if value.type.bits == instr.type.bits:
                return value
            return None
        if isinstance(instr, Select):
            cond, a, b = instr.operands
            if isinstance(cond, ConstantInt):
                return a if cond.value else b
            if a is b:
                return a
            return None
        if isinstance(instr, Phi):
            values = [v for v in instr.operands]
            distinct = [v for v in values if v is not instr]
            if distinct and all(v is distinct[0] for v in distinct):
                return distinct[0]
            return None
        return None
