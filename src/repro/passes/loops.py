"""Loop passes: canonicalisation, LICM and profile-gated unrolling.

LoopSimplify is also a prerequisite of the spinloop detector (§3.4.2):
"we perform the LLVM-provided loop simplification pass to restructure
loops such that they have dedicated exit blocks", enabling precise
analysis of their termination conditions.
"""

from __future__ import annotations

import copy

from typing import Dict, List, Set

from ..ir import (AtomicRMW, BinOp, Block, Br, Call, Cast, Cmpxchg,
                  CompilerBarrier, CondBr, ConstantInt, Fence, Function,
                  ICmp, Instruction, Load, Loop, Module, Phi, Select,
                  Store, natural_loops, predecessors, users_map)
from .manager import Pass


class LoopSimplify(Pass):
    """Give every natural loop a dedicated preheader and normal form."""
    name = "loopsimplify"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Insert preheaders where missing; returns True on change."""
        changed = False
        # Recompute loops after each structural change.
        progress = True
        while progress:
            progress = False
            preds = predecessors(fn)
            for loop in natural_loops(fn):
                if self._ensure_preheader(fn, loop, preds):
                    progress = True
                    changed = True
                    break
                if self._ensure_dedicated_exits(fn, loop, preds):
                    progress = True
                    changed = True
                    break
        return changed

    def _ensure_preheader(self, fn: Function, loop: Loop,
                          preds: Dict[Block, List[Block]]) -> bool:
        header = loop.header
        outside = [p for p in preds[header] if p not in loop.blocks]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return False    # already has a dedicated preheader
        if not outside:
            return False    # unreachable loop; leave for simplifycfg
        index = fn.blocks.index(header)
        preheader = fn.add_block(f"{header.name}.preheader", index=index)
        # Split header phis between outside and latch edges.
        for phi in header.phis():
            outside_pairs = [(v, b) for v, b in phi.incoming()
                             if b in outside]
            for _, b in outside_pairs:
                phi.remove_incoming(b)
            if len(outside_pairs) == 1:
                merged = outside_pairs[0][0]
            else:
                pre_phi = Phi(phi.type, name=f"{phi.name}.pre")
                for v, b in outside_pairs:
                    pre_phi.add_incoming(v, b)
                preheader.insert(0, pre_phi)
                merged = pre_phi
            phi.add_incoming(merged, preheader)
        preheader.append(Br(header))
        for pred in outside:
            pred.terminator.replace_successor(header, preheader)
        return True

    def _ensure_dedicated_exits(self, fn: Function, loop: Loop,
                                preds: Dict[Block, List[Block]]) -> bool:
        for src, exit_block in loop.exit_edges():
            outside_preds = [p for p in preds[exit_block]
                             if p not in loop.blocks]
            if not outside_preds:
                continue
            # Exit block also reachable from outside the loop: give the
            # loop its own landing block.
            index = fn.blocks.index(exit_block)
            landing = fn.add_block(f"{exit_block.name}.loopexit", index=index)
            landing.append(Br(exit_block))
            inside_preds = [p for p in preds[exit_block]
                            if p in loop.blocks]
            for phi in exit_block.phis():
                landing_phi = Phi(phi.type, name=f"{phi.name}.le")
                for pred in inside_preds:
                    value = phi.incoming_for(pred)
                    landing_phi.add_incoming(value, pred)
                    phi.remove_incoming(pred)
                landing.insert(0, landing_phi)
                phi.add_incoming(landing_phi, landing)
            for pred in inside_preds:
                pred.terminator.replace_successor(exit_block, landing)
            return True
        return False


class LICM(Pass):
    """Hoists loop-invariant pure computations into the preheader.

    Loads are hoisted only when the loop body is entirely free of
    stores, fences, atomics and calls — matching an optimiser that must
    treat lifted memory opaquely.  Consequently fences pin loads inside
    loops, and their removal unlocks this transformation.
    """

    name = "licm"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Hoist loop-invariant pure instructions into the preheader."""
        changed = False
        preds = predecessors(fn)
        for loop in natural_loops(fn):
            outside = [p for p in preds[loop.header]
                       if p not in loop.blocks]
            if len(outside) != 1 or len(outside[0].successors()) != 1:
                continue        # requires LoopSimplify first
            preheader = outside[0]
            has_barrier = any(
                isinstance(i, (Store, Fence, CompilerBarrier, Call,
                               Cmpxchg, AtomicRMW))
                for block in loop.blocks for i in block.instructions)

            def defined_in_loop(value) -> bool:
                return (isinstance(value, Instruction)
                        and value.parent in loop.blocks)

            hoisted = True
            while hoisted:
                hoisted = False
                for block in list(loop.blocks):
                    for instr in list(block.instructions):
                        if isinstance(instr, (BinOp, ICmp, Cast, Select)):
                            movable = not any(defined_in_loop(op)
                                              for op in instr.operands)
                        elif isinstance(instr, Load) and not has_barrier \
                                and instr.ordering is None:
                            movable = not defined_in_loop(instr.addr)
                        else:
                            continue
                        if movable:
                            block.remove(instr)
                            preheader.insert(
                                len(preheader.instructions) - 1, instr)
                            hoisted = True
                            changed = True
        return changed


#: Instruction kinds a loop body may contain and still be unrolled.
#: Fences and barriers are fine — unrolling replays the per-iteration
#: instruction sequence verbatim, so every iteration still executes
#: exactly the fences it did before (contrast LICM, which *moves*
#: them).  Calls and atomics disqualify the loop: their cost dwarfs
#: the back-edge overhead the unroll removes, so the wager is bad.
_UNROLLABLE_BODY = (BinOp, ICmp, Cast, Select, Load, Store, Phi,
                    Fence, CompilerBarrier)


class LoopUnroll(Pass):
    """Profile-gated unrolling of hot one- and two-block loops.

    Handles the two canonical shapes the lifter + SimplifyCFG leave
    behind: a rotated do-while (single block, conditional back edge)
    and a test-at-top while loop (header tests and exits, a dedicated
    latch does the work and jumps back).

    Without a profile this pass is a strict no-op — unrolling is the
    one transform here that is a pure wager on trip counts, and the
    measured ``loop_trips`` summaries are what make the wager safe: a
    loop is unrolled only when it is hot and its average trip count
    comfortably exceeds the factor.  The win under the emulated cost
    model is structural, not speculative: ``factor - 1`` of every
    ``factor`` iterations stop paying the back-edge jump and the
    header-phi copy movs, because intermediate copies pass their
    loop-carried values in SSA registers and fall through.  Every copy
    keeps the original exit test, so a trip count that is not a
    multiple of the factor still exits on the exact same iteration.
    """

    name = "loopunroll"

    def __init__(self, profile=None, factor: int = 4, min_trip: int = 8,
                 max_body: int = 64, select=None) -> None:
        self.profile = profile          # a ProfileGuide
        self.factor = factor
        self.min_trip = min_trip
        self.max_body = max_body
        #: Optional ``{(fn_name, header_name): factor}`` whitelist.  Set
        #: by the cost-model trial driver
        #: (:class:`repro.profile.costmodel.CostGuidedUnroll`) to apply
        #: only the unrolls its lowering trials proved beneficial, each
        #: at its winning factor.
        self.select = select

    def run_function(self, fn: Function, module: Module) -> bool:
        """Unroll eligible hot loops of ``fn``; True on change."""
        if self.profile is None:
            return False
        changed = False
        # Snapshot: unrolling adds blocks, but never creates new
        # small natural loops, so one sweep suffices.
        for loop in natural_loops(fn):
            if self.select is not None:
                factor = self.select.get((fn.name, loop.header.name), 0)
            else:
                factor = self.factor
            if factor < 2:
                continue
            if self._unroll(fn, loop, factor):
                changed = True
        return changed

    def _candidate(self, fn: Function, loop: Loop):
        """(header, latch, exit, term) when unrollable, else None.

        ``latch`` is the block carrying the back edge — the header
        itself for a rotated single-block loop.
        """
        header = loop.header
        blocks = list(loop.blocks)
        if len(blocks) == 1:
            latch = header
        elif len(blocks) == 2:
            latch = blocks[0] if blocks[1] is header else blocks[1]
            # Test-at-top form only: the latch does the work and
            # unconditionally returns to the header.
            if not isinstance(latch.terminator, Br) or \
                    latch.terminator.target is not header:
                return None
            if latch.phis():
                return None
        else:
            return None             # bigger bodies: not worth the
        term = header.terminator    # clone complexity here
        if not isinstance(term, CondBr) or term.if_true is term.if_false:
            return None
        back = header if latch is header else latch
        if term.if_true is back:
            exit_block = term.if_false
        elif term.if_false is back:
            exit_block = term.if_true
        else:
            return None
        if exit_block in loop.blocks:
            return None
        # The exit must be reachable from the header alone, so every
        # escaping value can be funnelled through an exit phi keyed on
        # the (multiplied) header edge.  LoopSimplify's dedicated exits
        # give hot loops this shape.
        preds = predecessors(fn)
        if set(preds.get(exit_block, ())) != {header}:
            return None
        addr = header.origin_addr
        # A loop qualifies when hot by the mean threshold, or when a
        # skewed profile hides real weight below the mean (one mega-hot
        # sibling loop drags the mean over everything else).
        if not (self.profile.is_hot(addr)
                or self.profile.weight_fraction(addr) >= 0.01):
            return None
        if self.profile.avg_trip(addr) < self.min_trip:
            return None
        body = [i for b in blocks for i in b.instructions
                if not isinstance(i, Phi)]
        if len(body) > self.max_body:
            return None
        if not all(isinstance(i, _UNROLLABLE_BODY) for i in body
                   if i is not term and i is not latch.terminator):
            return None
        if latch is not header and not self._latch_values_stay_inside(
                fn, loop, latch):
            return None
        return header, latch, exit_block, term

    @staticmethod
    def _latch_values_stay_inside(fn: Function, loop: Loop,
                                  latch: Block) -> bool:
        """Latch-defined values must not escape the loop.  The only
        exit edge leaves the *header*, before the latch of the current
        iteration runs, so an outside use of a latch value is already
        dubious SSA — and the unroller has no edge to route it over."""
        users = users_map(fn)
        for instr in latch.instructions:
            for user in users.get(instr, ()):
                if user.parent not in loop.blocks:
                    return False
        return True

    @staticmethod
    def _insert_exit_phis(fn: Function, loop: Loop, header: Block,
                          exit_block: Block) -> None:
        """Put the loop into LCSSA form along its single exit edge.

        Every header-defined value used outside the loop gets a
        dedicated phi in the exit block (incoming over the header
        edge), and the outside users are rewired to it.  Unrolling then
        only needs to extend *exit phis* per copy; direct dominance
        uses — which would silently keep reading the original header's
        value for iterations that exited from a clone — no longer
        exist."""
        users = users_map(fn)
        for instr in list(header.instructions):
            if instr is header.terminator:
                continue
            rewire = []
            for user in users.get(instr, ()):
                if user.parent in loop.blocks:
                    continue
                if isinstance(user, Phi) and user.parent is exit_block:
                    continue        # already a retargetable exit phi
                rewire.append(user)
            if not rewire:
                continue
            lcssa = Phi(instr.type, name=f"{instr.name}.lcssa")
            lcssa.add_incoming(instr, header)
            exit_block.insert(0, lcssa)
            for user in rewire:
                for i, op in enumerate(user.operands):
                    if op is instr:
                        user.operands[i] = lcssa

    def _unroll(self, fn: Function, loop: Loop, factor: int) -> bool:
        candidate = self._candidate(fn, loop)
        if candidate is None:
            return False
        header, latch, exit_block, term = candidate
        self._insert_exit_phis(fn, loop, header, exit_block)

        phis = header.phis()
        latch_val = {phi: phi.incoming_for(latch) for phi in phis}
        exit_phi_vals = [(phi, phi.incoming_for(header))
                         for phi in exit_block.phis()
                         if header in phi.incoming_blocks]

        def clone_instrs(src: Block, dst: Block, vmap: Dict, k: int):
            """Copy ``src``'s non-phi, non-terminator instructions."""
            for instr in src.instructions:
                if isinstance(instr, Phi) or instr is src.terminator:
                    continue
                new_instr = copy.copy(instr)
                new_instr.operands = [vmap.get(op, op)
                                      for op in instr.operands]
                new_instr.tags = set(instr.tags)
                new_instr.name = f"{instr.name}.u{k}"
                vmap[instr] = new_instr
                dst.append(new_instr)

        prev = latch
        # carry: header phi -> its value at the end of the previous copy.
        carry = dict(latch_val)
        for k in range(1, factor):
            index = fn.blocks.index(prev) + 1
            h_clone = fn.add_block(f"{header.name}.unroll{k}", index=index)
            h_clone.origin_addr = header.origin_addr
            vmap: Dict[Instruction, object] = dict(carry)
            clone_instrs(header, h_clone, vmap, k)
            if latch is header:
                # Rotated form: the conditional back edge lives in the
                # clone itself.  Both successor slots still name
                # (header, exit); the back-edge slot is retargeted to
                # the *next* copy when it is created, leaving the final
                # copy as the real latch.
                new_term = CondBr(vmap.get(term.cond, term.cond),
                                  term.if_true, term.if_false)
                h_clone.append(new_term)
                new_latch = h_clone
            else:
                l_clone = fn.add_block(f"{latch.name}.unroll{k}",
                                       index=index + 1)
                l_clone.origin_addr = latch.origin_addr
                new_term = CondBr(vmap.get(term.cond, term.cond),
                                  term.if_true, term.if_false)
                new_term.replace_successor(latch, l_clone)
                h_clone.append(new_term)
                clone_instrs(latch, l_clone, vmap, k)
                l_clone.append(Br(header))
                new_latch = l_clone
            prev.terminator.replace_successor(header, h_clone)
            for phi, value in exit_phi_vals:
                phi.add_incoming(vmap.get(value, value), h_clone)
            carry = {phi: vmap.get(latch_val[phi], latch_val[phi])
                     for phi in phis}
            prev = new_latch

        # The back edge now leaves the last copy: header phis take their
        # loop-carried values from it.
        for phi in phis:
            phi.remove_incoming(latch)
            phi.add_incoming(carry[phi], prev)
        self.profile.count("loops_unrolled")
        return True
