"""Loop passes: canonicalisation (preheaders, dedicated exits) and LICM.

LoopSimplify is also a prerequisite of the spinloop detector (§3.4.2):
"we perform the LLVM-provided loop simplification pass to restructure
loops such that they have dedicated exit blocks", enabling precise
analysis of their termination conditions.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir import (AtomicRMW, BinOp, Block, Br, Call, Cast, Cmpxchg,
                  CompilerBarrier, ConstantInt, Fence, Function, ICmp,
                  Instruction, Load, Loop, Module, Phi, Select, Store,
                  natural_loops, predecessors)
from .manager import Pass


class LoopSimplify(Pass):
    """Give every natural loop a dedicated preheader and normal form."""
    name = "loopsimplify"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Insert preheaders where missing; returns True on change."""
        changed = False
        # Recompute loops after each structural change.
        progress = True
        while progress:
            progress = False
            preds = predecessors(fn)
            for loop in natural_loops(fn):
                if self._ensure_preheader(fn, loop, preds):
                    progress = True
                    changed = True
                    break
                if self._ensure_dedicated_exits(fn, loop, preds):
                    progress = True
                    changed = True
                    break
        return changed

    def _ensure_preheader(self, fn: Function, loop: Loop,
                          preds: Dict[Block, List[Block]]) -> bool:
        header = loop.header
        outside = [p for p in preds[header] if p not in loop.blocks]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return False    # already has a dedicated preheader
        if not outside:
            return False    # unreachable loop; leave for simplifycfg
        index = fn.blocks.index(header)
        preheader = fn.add_block(f"{header.name}.preheader", index=index)
        # Split header phis between outside and latch edges.
        for phi in header.phis():
            outside_pairs = [(v, b) for v, b in phi.incoming()
                             if b in outside]
            for _, b in outside_pairs:
                phi.remove_incoming(b)
            if len(outside_pairs) == 1:
                merged = outside_pairs[0][0]
            else:
                pre_phi = Phi(phi.type, name=f"{phi.name}.pre")
                for v, b in outside_pairs:
                    pre_phi.add_incoming(v, b)
                preheader.insert(0, pre_phi)
                merged = pre_phi
            phi.add_incoming(merged, preheader)
        preheader.append(Br(header))
        for pred in outside:
            pred.terminator.replace_successor(header, preheader)
        return True

    def _ensure_dedicated_exits(self, fn: Function, loop: Loop,
                                preds: Dict[Block, List[Block]]) -> bool:
        for src, exit_block in loop.exit_edges():
            outside_preds = [p for p in preds[exit_block]
                             if p not in loop.blocks]
            if not outside_preds:
                continue
            # Exit block also reachable from outside the loop: give the
            # loop its own landing block.
            index = fn.blocks.index(exit_block)
            landing = fn.add_block(f"{exit_block.name}.loopexit", index=index)
            landing.append(Br(exit_block))
            inside_preds = [p for p in preds[exit_block]
                            if p in loop.blocks]
            for phi in exit_block.phis():
                landing_phi = Phi(phi.type, name=f"{phi.name}.le")
                for pred in inside_preds:
                    value = phi.incoming_for(pred)
                    landing_phi.add_incoming(value, pred)
                    phi.remove_incoming(pred)
                landing.insert(0, landing_phi)
                phi.add_incoming(landing_phi, landing)
            for pred in inside_preds:
                pred.terminator.replace_successor(exit_block, landing)
            return True
        return False


class LICM(Pass):
    """Hoists loop-invariant pure computations into the preheader.

    Loads are hoisted only when the loop body is entirely free of
    stores, fences, atomics and calls — matching an optimiser that must
    treat lifted memory opaquely.  Consequently fences pin loads inside
    loops, and their removal unlocks this transformation.
    """

    name = "licm"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Hoist loop-invariant pure instructions into the preheader."""
        changed = False
        preds = predecessors(fn)
        for loop in natural_loops(fn):
            outside = [p for p in preds[loop.header]
                       if p not in loop.blocks]
            if len(outside) != 1 or len(outside[0].successors()) != 1:
                continue        # requires LoopSimplify first
            preheader = outside[0]
            has_barrier = any(
                isinstance(i, (Store, Fence, CompilerBarrier, Call,
                               Cmpxchg, AtomicRMW))
                for block in loop.blocks for i in block.instructions)

            def defined_in_loop(value) -> bool:
                return (isinstance(value, Instruction)
                        and value.parent in loop.blocks)

            hoisted = True
            while hoisted:
                hoisted = False
                for block in list(loop.blocks):
                    for instr in list(block.instructions):
                        if isinstance(instr, (BinOp, ICmp, Cast, Select)):
                            movable = not any(defined_in_loop(op)
                                              for op in instr.operands)
                        elif isinstance(instr, Load) and not has_barrier \
                                and instr.ordering is None:
                            movable = not defined_in_loop(instr.addr)
                        else:
                            continue
                        if movable:
                            block.remove(instr)
                            preheader.insert(
                                len(preheader.instructions) - 1, instr)
                            hoisted = True
                            changed = True
        return changed
