"""Optimisation and transformation passes over Poly IR."""

from .constfold import ConstFold, eval_binop, eval_icmp
from .dce import DCE
from .inline import Inliner, clone_function_body, inline_call
from .localopt import DSE, LoadElim, LocalCSE
from .loops import LICM, LoopSimplify, LoopUnroll
from .manager import Pass, PassManager, PassRunRecord, module_size
from .mem2reg import Mem2Reg
from .regpromote import RegPromote
from .scalarpromo import ScalarPromotion
from .simplifycfg import SimplifyCFG


def standard_pipeline(verify: bool = False, tracer=None,
                      counters=None) -> PassManager:
    """The O2-flavoured pipeline applied to lifted modules before
    lowering.  Ordering mirrors a classic LLVM pipeline: promote state
    to SSA first, then iterate scalar/memory/CFG clean-ups.

    ``tracer``/``counters`` (see :mod:`repro.observability`) attach
    per-pass wall-time and IR-delta instrumentation."""
    return PassManager([
        SimplifyCFG(),
        RegPromote(),
        Mem2Reg(),
        ConstFold(),
        LocalCSE(),
        LoadElim(),
        DSE(),
        DCE(),
        SimplifyCFG(),
        LoopSimplify(),
        LICM(),
        ScalarPromotion(),
        ConstFold(),
        LocalCSE(),
        LoadElim(),
        DSE(),
        DCE(),
        SimplifyCFG(),
    ], verify=verify, max_iterations=2, tracer=tracer, counters=counters)


__all__ = [
    "ConstFold", "eval_binop", "eval_icmp", "DCE", "Inliner",
    "clone_function_body", "inline_call", "DSE", "LoadElim", "LocalCSE",
    "LICM", "LoopSimplify", "LoopUnroll", "Pass", "PassManager",
    "PassRunRecord",
    "Mem2Reg", "RegPromote", "ScalarPromotion", "SimplifyCFG",
    "module_size", "standard_pipeline",
]
