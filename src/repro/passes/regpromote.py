"""Promotion of virtual CPU state globals to SSA values (§3.3.2, §3.4.2).

Lifted code models registers and flags as thread-local globals, making
every machine instruction a cluster of global loads and stores.  Since
no other thread can write a thread's virtual registers (they are never
accessed indirectly), their accesses can be promoted to SSA *within a
function*, with spills to the real global at the boundaries where other
lifted code observes them.

Which boundaries need which globals is decided by a conservative
version of the Elwazeer et al. prototype-recovery algorithm, as in the
paper: every lifted function gets an **input** set (state globals it
may read before writing, transitively through callees) and an
**output** set (state globals it may write).  Around an internal call,
the caller spills the callee's inputs and reloads the callee's outputs;
at returns, a function stores back its own outputs.  External library
calls need no glue at all — argument marshalling is explicit in the IR
(the translator loads the virtual argument registers into the call) and
the library touches no virtual state.

Implementation: each promotable global is demoted to a function-local
alloca (init load for inputs at entry, targeted spill/reload around
calls, output stores before returns) after which :class:`Mem2Reg`
performs the actual SSA construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (Alloca, Block, Call, Function, GlobalVar, Instruction,
                  Load, Module, Ret, Store)
from .manager import Pass
from .mem2reg import Mem2Reg


def _is_glue(instr: Instruction) -> bool:
    return "rp-glue" in instr.tags


class StateSummaries:
    """Per-function input/output sets over promotable globals.

    ``observed`` filters outputs down to globals some caller actually
    reads after a call before overwriting (plus the virtual rax, which
    the callback wrapper reads).  Compiled code never keeps condition
    flags live across a call, so this is what lets the flag-computation
    chains die: a function whose flag writes are never observed does
    not store them back at returns.
    """

    def __init__(self, inputs: Dict[Function, Set[GlobalVar]],
                 outputs: Dict[Function, Set[GlobalVar]],
                 observed: Set[GlobalVar]) -> None:
        self.inputs = inputs
        self.outputs = outputs
        self.observed = observed

    def call_inputs(self, call: Call) -> Set[GlobalVar]:
        """Inputs of the callee (external calls have no virtual-state
        footprint: their argument marshalling is explicit IR)."""
        if call.is_external:
            return set()
        return self.inputs.get(call.callee, set())

    def call_outputs(self, call: Call) -> Set[GlobalVar]:
        """Virtual-state globals a call may redefine (its summary outputs)."""
        if call.is_external:
            return set()
        return self.outputs.get(call.callee, set()) & self.observed

    def stored_outputs(self, fn: Function) -> Set[GlobalVar]:
        """Virtual-state globals a function itself stores."""
        return self.outputs.get(fn, set()) & self.observed


def compute_state_summaries(module: Module) -> StateSummaries:
    """Fixpoint computation of may-read-before-write (inputs) and
    may-write (outputs) over the lifted call graph, then of the
    module-wide observed set."""
    promotable = {g for g in module.globals if g.promotable}
    inputs: Dict[Function, Set[GlobalVar]] = {f: set()
                                              for f in module.functions}
    outputs: Dict[Function, Set[GlobalVar]] = {f: set()
                                               for f in module.functions}
    changed = True
    while changed:
        changed = False
        for fn in module.functions:
            if not fn.blocks:
                continue
            new_in, new_out = _function_liveness(fn, promotable, inputs,
                                                 outputs)
            if new_in != inputs[fn]:
                inputs[fn] = new_in
                changed = True
            if new_out != outputs[fn]:
                outputs[fn] = new_out
                changed = True

    observed: Set[GlobalVar] = set()
    rax = module.get_global("vreg_rax")
    if rax is not None:
        observed.add(rax)
    # Monotone fixpoint: Ret glue reads outputs(f) & observed, so a
    # growing observed set can surface more reads-after-call.
    changed = True
    while changed:
        changed = False
        for fn in module.functions:
            if not fn.blocks:
                continue
            found = _observed_after_calls(fn, promotable, inputs, outputs,
                                          observed)
            if not found <= observed:
                observed |= found
                changed = True
    return StateSummaries(inputs, outputs, observed)


def _observed_after_calls(fn: Function, promotable, inputs, outputs,
                          observed) -> Set[GlobalVar]:
    """Globals live immediately after some internal call site in fn.

    Backward liveness with calls treated conservatively as non-killing
    (uses = callee inputs) and rets as uses of the function's currently
    observed outputs.
    """
    live_in: Dict[Block, Set[GlobalVar]] = {b: set() for b in fn.blocks}
    result: Set[GlobalVar] = set()
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            live: Set[GlobalVar] = set()
            for succ in block.successors():
                live |= live_in[succ]
            for instr in reversed(block.instructions):
                if isinstance(instr, Ret):
                    live |= outputs.get(fn, set()) & observed
                elif isinstance(instr, Call):
                    if not instr.is_external:
                        result |= live & promotable
                        live |= inputs.get(instr.callee, set())
                elif isinstance(instr, Store) and instr.addr in promotable:
                    live.discard(instr.addr)
                elif isinstance(instr, Load) and instr.addr in promotable:
                    live.add(instr.addr)
            if live != live_in[block]:
                live_in[block] = live
                changed = True
    return result


def _function_liveness(fn: Function, promotable: Set[GlobalVar],
                       inputs, outputs) -> Tuple[Set[GlobalVar],
                                                 Set[GlobalVar]]:
    """Backward liveness of promotable globals at function entry, and
    the set of globals the function may write (incl. callees)."""
    # Per-block gen/kill.
    gen: Dict[Block, Set[GlobalVar]] = {}
    kill: Dict[Block, Set[GlobalVar]] = {}
    may_write: Set[GlobalVar] = set()
    for block in fn.blocks:
        g: Set[GlobalVar] = set()
        k: Set[GlobalVar] = set()
        for instr in block.instructions:
            if isinstance(instr, Load) and instr.addr in promotable:
                if instr.addr not in k:
                    g.add(instr.addr)
            elif isinstance(instr, Store) and instr.addr in promotable:
                k.add(instr.addr)
                may_write.add(instr.addr)
            elif isinstance(instr, Call):
                if instr.is_external:
                    continue
                callee_in = inputs.get(instr.callee, set())
                callee_out = outputs.get(instr.callee, set())
                g |= callee_in - k
                k |= callee_out
                may_write |= callee_out
            else:
                # Loads/stores through computed addresses never touch
                # virtual state (registers are not accessed indirectly).
                pass
        gen[block] = g
        kill[block] = k
    live_in: Dict[Block, Set[GlobalVar]] = {b: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            live_out: Set[GlobalVar] = set()
            for succ in block.successors():
                live_out |= live_in[succ]
            new = gen[block] | (live_out - kill[block])
            if new != live_in[block]:
                live_in[block] = new
                changed = True
    return live_in[fn.entry], may_write


class RegPromote(Pass):
    """Promote guest-register loads/stores of virtual state to SSA."""
    name = "regpromote"

    def __init__(self) -> None:
        self._summaries: Optional[StateSummaries] = None

    def run_module(self, module: Module) -> bool:
        """Compute state summaries, then promote every function."""
        self._summaries = compute_state_summaries(module)
        changed = False
        for fn in module.functions:
            if fn.blocks:
                changed |= self.run_function(fn, module)
        return changed

    def run_function(self, fn: Function, module: Module) -> bool:
        """Promote one function against the module-wide summaries."""
        if self._summaries is None:
            self._summaries = compute_state_summaries(module)
        summaries = self._summaries
        promotable = [g for g in module.globals if g.promotable]
        if not promotable:
            return False

        # Re-promotion is a full rewrite: glue from a previous round is
        # treated as ordinary accesses and replaced by fresh glue at the
        # current boundaries.  (Partial re-runs that skip old glue are
        # unsound: new spills of stale entry values would overwrite the
        # old, correct ones.)
        used: List[GlobalVar] = []
        for var in promotable:
            for instr in fn.instructions():
                if var in instr.operands:
                    used.append(var)
                    break
        if not used:
            return False
        used_set = set(used)
        my_inputs = summaries.inputs.get(fn, set()) & used_set
        my_outputs = summaries.stored_outputs(fn)

        slots: Dict[GlobalVar, Alloca] = {
            var: Alloca(var.size, name=f"{var.name}.slot") for var in used}

        for block in fn.blocks:
            i = 0
            while i < len(block.instructions):
                instr = block.instructions[i]
                if isinstance(instr, Load) and instr.addr in slots:
                    instr.operands[0] = slots[instr.addr]
                elif isinstance(instr, Store) and instr.addr in slots \
                        and instr.value not in slots:
                    instr.operands[1] = slots[instr.addr]
                elif isinstance(instr, Call):
                    spill = summaries.call_inputs(instr) & used_set
                    reload = summaries.call_outputs(instr) & used_set
                    i = self._spill_reload(block, i, instr, slots,
                                           spill, reload)
                elif isinstance(instr, Ret):
                    i = self._store_outputs(block, i, slots,
                                            my_outputs & used_set)
                i += 1

        entry = fn.entry
        insert_at = 0
        for var in used:
            slot = slots[var]
            entry.insert(insert_at, slot)
            insert_at += 1
            if var in my_inputs:
                init = Load(var, var.size, name=f"{var.name}.init")
                init.tags.update(("vstate", "rp-glue"))
                entry.insert(insert_at, init)
                insert_at += 1
                spill = Store(init, slot, var.size)
                spill.tags.update(("vstate", "rp-glue"))
                entry.insert(insert_at, spill)
                insert_at += 1
        Mem2Reg().run_function(fn, module)
        return True

    @staticmethod
    def _spill_reload(block: Block, index: int, call: Call,
                      slots: Dict[GlobalVar, Alloca],
                      spill_vars: Set[GlobalVar],
                      reload_vars: Set[GlobalVar]) -> int:
        """Insert targeted spills before / reloads after a call;
        returns the new index of the call."""
        before: List[Instruction] = []
        after: List[Instruction] = []
        for var in sorted(spill_vars, key=lambda v: v.name):
            slot = slots[var]
            cur = Load(slot, var.size, name=f"{var.name}.spill")
            cur.tags.update(("vstate", "rp-glue"))
            spill = Store(cur, var, var.size)
            spill.tags.update(("vstate", "rp-glue"))
            before += [cur, spill]
        for var in sorted(reload_vars, key=lambda v: v.name):
            slot = slots[var]
            reload = Load(var, var.size, name=f"{var.name}.reload")
            reload.tags.update(("vstate", "rp-glue"))
            refill = Store(reload, slot, var.size)
            refill.tags.update(("vstate", "rp-glue"))
            after += [reload, refill]
        for j, instr in enumerate(before):
            block.insert(index + j, instr)
        call_index = index + len(before)
        for j, instr in enumerate(after):
            block.insert(call_index + 1 + j, instr)
        return call_index + len(after)

    @staticmethod
    def _store_outputs(block: Block, index: int,
                       slots: Dict[GlobalVar, Alloca],
                       output_vars: Set[GlobalVar]) -> int:
        before: List[Instruction] = []
        for var in sorted(output_vars, key=lambda v: v.name):
            slot = slots[var]
            cur = Load(slot, var.size, name=f"{var.name}.out")
            cur.tags.update(("vstate", "rp-glue"))
            spill = Store(cur, var, var.size)
            spill.tags.update(("vstate", "rp-glue"))
            before += [cur, spill]
        for j, instr in enumerate(before):
            block.insert(index + j, instr)
        return index + len(before)
