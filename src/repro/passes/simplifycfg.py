"""CFG simplification: unreachable-block removal, block merging,
empty-block threading and single-predecessor phi collapsing."""

from __future__ import annotations

from typing import List

from ..ir import (Block, Br, Function, Instruction, Module, Phi,
                  predecessors, reachable_blocks, replace_all_uses)
from .manager import Pass


class SimplifyCFG(Pass):
    """Remove unreachable blocks, merge straight-line chains, thread trivial jumps."""
    name = "simplifycfg"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Iterate CFG clean-ups until stable."""
        changed = False
        again = True
        while again:
            again = False
            again |= self._remove_unreachable(fn)
            again |= self._collapse_phis(fn)
            again |= self._merge_blocks(fn)
            again |= self._thread_empty_blocks(fn)
            changed |= again
        return changed

    def _remove_unreachable(self, fn: Function) -> bool:
        reachable = reachable_blocks(fn)
        dead = [block for block in fn.blocks if block not in reachable]
        if not dead:
            return False
        dead_set = set(dead)
        for block in fn.blocks:
            if block in dead_set:
                continue
            for phi in block.phis():
                for pred in list(phi.incoming_blocks):
                    if pred in dead_set:
                        phi.remove_incoming(pred)
        for block in dead:
            fn.remove_block(block)
        return True

    def _collapse_phis(self, fn: Function) -> bool:
        changed = False
        preds = predecessors(fn)
        for block in fn.blocks:
            for phi in list(block.phis()):
                if len(preds[block]) == 1 and len(phi.operands) == 1:
                    replace_all_uses(fn, phi, phi.operands[0])
                    block.remove(phi)
                    changed = True
        return changed

    def _merge_blocks(self, fn: Function) -> bool:
        """Merge A -> B when A's only successor is B and B's only
        predecessor is A."""
        changed = False
        preds = predecessors(fn)
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, Br):
                continue
            succ = term.target
            if succ is block or succ is fn.entry:
                continue
            if len(preds[succ]) != 1:
                continue
            # Collapse phis in succ (single predecessor).
            for phi in list(succ.phis()):
                replace_all_uses(fn, phi, phi.operands[0])
                succ.remove(phi)
            block.remove(term)
            for instr in list(succ.instructions):
                succ.remove(instr)
                block.append(instr)
            # Successors of succ now flow from block; fix their phis.
            for nxt in block.successors():
                for phi in nxt.phis():
                    for i, pred in enumerate(phi.incoming_blocks):
                        if pred is succ:
                            phi.incoming_blocks[i] = block
            fn.remove_block(succ)
            changed = True
            preds = predecessors(fn)
        return changed

    def _thread_empty_blocks(self, fn: Function) -> bool:
        """Retarget branches through blocks containing only ``br X``."""
        changed = False
        preds = predecessors(fn)
        for block in list(fn.blocks):
            if block is fn.entry:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, Br):
                continue
            target = term.target
            if target is block:
                continue
            # Don't thread if the target has phis and a predecessor of
            # `block` already reaches `target` (would create duplicate
            # incoming entries with possibly different values).
            target_phis = target.phis()
            skip = False
            for pred in preds[block]:
                if target_phis and target in pred.successors():
                    skip = True
                    break
            if skip or not preds[block]:
                continue
            for pred in list(preds[block]):
                pred.terminator.replace_successor(block, target)
                for phi in target_phis:
                    value = phi.incoming_for(block)
                    if value is not None:
                        phi.add_incoming(value, pred)
            for phi in target_phis:
                phi.remove_incoming(block)
            fn.remove_block(block)
            changed = True
            preds = predecessors(fn)
        return changed
