"""Lightweight alias analysis for lifted memory accesses.

Addresses are canonicalised to ``(kind, root, offset)`` by chasing
constant add/sub chains:

* ``("const", None, a)`` — absolute address ``a`` (original data);
* ``("global", id(var), o)`` — offset into a module global (virtual
  CPU state, runtime data);
* ``("sym", id(value), o)`` — offset from an arbitrary SSA value.

Disambiguation rules (each grounded in a system invariant):

* same root, disjoint ``[offset, offset+width)`` ranges → no alias;
* distinct globals → no alias (distinct storage, accesses in bounds);
* a global vs anything else → no alias (virtual registers are never
  accessed indirectly — the paper's §3.3.1 argument);
* an ``emustack``-tagged access vs an untagged one → no alias (the
  emulated stack is thread-exclusive and disjoint from program data —
  the same reasoning Lasagne uses to drop stack fences);
* otherwise → may alias.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..ir import BinOp, ConstantInt, GlobalVar, Instruction, Value

AddrKey = Tuple[str, Optional[int], int]


def symbolic_addr(addr: Value) -> AddrKey:
    """Canonicalise an address to (root value, constant offset)."""
    offset = 0
    node = addr
    for _ in range(64):     # bounded chase
        if isinstance(node, BinOp) and node.op in ("add", "sub"):
            a, b = node.operands
            if isinstance(b, ConstantInt):
                offset += b.value if node.op == "add" else -b.value
                node = a
                continue
            if node.op == "add" and isinstance(a, ConstantInt):
                offset += a.value
                node = b
                continue
        break
    if isinstance(node, ConstantInt):
        return ("const", None, node.value + offset)
    if isinstance(node, GlobalVar):
        return ("global", id(node), offset)
    return ("sym", id(node), offset)


def _ranges_overlap(a_off: int, a_width: int, b_off: int,
                    b_width: int) -> bool:
    return a_off < b_off + b_width and b_off < a_off + a_width


def may_alias(a_key: AddrKey, a_width: int, a_stack: bool,
              b_key: AddrKey, b_width: int, b_stack: bool) -> bool:
    """Conservative overlap test between two canonicalised accesses."""
    a_kind, a_root, a_off = a_key
    b_kind, b_root, b_off = b_key
    if a_kind == b_kind and a_root == b_root:
        return _ranges_overlap(a_off, a_width, b_off, b_width)
    if a_kind == "global" or b_kind == "global":
        # Distinct globals never alias, and globals (virtual state,
        # runtime data) are never the target of computed program
        # pointers.
        return False
    if a_stack != b_stack and (a_kind == "const" or b_kind == "const"):
        # A stack access never aliases original *data-section* memory
        # (constant addresses): the emulated stack is runtime-allocated.
        # An untagged *symbolic* address, however, may well point into
        # the stack (e.g. a frame address that travelled through
        # memory), so sym-vs-sym with differing tags must stay MAY.
        return False
    return True


def access_is_stack(instr: Instruction) -> bool:
    """True if the access is tagged as emulated-stack traffic."""
    return "emustack" in instr.tags


def same_location(a_key: AddrKey, a_width: int,
                  b_key: AddrKey, b_width: int) -> bool:
    """True only when both accesses are provably the same bytes."""
    return a_key == b_key and a_width == b_width
