"""SSA promotion of memory slots (allocas), LLVM's mem2reg.

A slot is promotable when its address never escapes: every use is
either the address operand of a same-width Load or Store.  Promotion
uses pruned SSA construction — phis at the iterated dominance frontier
of the definition blocks, then renaming along the dominator tree.

Thread-locality makes this sound across fences and atomics: a
non-escaping slot can never be observed by another thread, which is
exactly the paper's argument for lifting registers as SSA values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (Alloca, Block, ConstantInt, Function, Instruction, Load,
                  Module, Phi, Store, dominance_frontiers, dominators,
                  predecessors, reachable_blocks, type_for_width, users_map)
from .manager import Pass


def _promotable_slots(fn: Function) -> Dict[Alloca, int]:
    """Allocas whose every use is a direct full-width load/store address."""
    users = users_map(fn)
    slots: Dict[Alloca, int] = {}
    for instr in fn.instructions():
        if not isinstance(instr, Alloca):
            continue
        width: Optional[int] = None
        ok = True
        for user in users.get(instr, []):
            if isinstance(user, Load) and user.addr is instr:
                access = user.width
            elif isinstance(user, Store) and user.addr is instr \
                    and user.value is not instr:
                access = user.width
            else:
                ok = False
                break
            if access != instr.size:
                ok = False
                break
            if width is None:
                width = access
            elif width != access:
                ok = False
                break
        if ok and width is not None:
            slots[instr] = width
        elif ok and width is None:
            slots[instr] = instr.size      # never accessed: trivially dead
    return slots


class Mem2Reg(Pass):
    """Promote non-escaping IR-global slots to SSA values with phis."""
    name = "mem2reg"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Standard SSA construction over the promotable slots."""
        slots = _promotable_slots(fn)
        if not slots:
            return False
        reachable = reachable_blocks(fn)
        frontiers = dominance_frontiers(fn)
        idom = dominators(fn)
        preds = predecessors(fn)

        # Dominator tree children.
        children: Dict[Block, List[Block]] = {b: [] for b in fn.blocks}
        for block, parent in idom.items():
            if parent is not None:
                children[parent].append(block)

        # Phi placement per slot.
        phis: Dict[Tuple[Alloca, Block], Phi] = {}
        for slot, width in slots.items():
            def_blocks: Set[Block] = set()
            for instr in fn.instructions():
                if isinstance(instr, Store) and instr.addr is slot:
                    def_blocks.add(instr.parent)
            work = list(def_blocks)
            placed: Set[Block] = set()
            while work:
                block = work.pop()
                for front in frontiers.get(block, ()):
                    if front in placed or front not in reachable:
                        continue
                    placed.add(front)
                    phi = Phi(type_for_width(width),
                              name=f"{slot.name}.phi")
                    front.insert(0, phi)
                    phis[(slot, front)] = phi
                    if front not in def_blocks:
                        work.append(front)

        phi_to_slot: Dict[Phi, Alloca] = {
            phi: slot for (slot, _block), phi in phis.items()}

        # Renaming.
        zero: Dict[Alloca, ConstantInt] = {
            slot: ConstantInt(0, type_for_width(width))
            for slot, width in slots.items()}
        replacements: Dict[Instruction, object] = {}
        to_remove: List[Instruction] = []

        def rename(block: Block, incoming: Dict[Alloca, object]) -> None:
            current = dict(incoming)
            for instr in list(block.instructions):
                phi_slot = phi_to_slot.get(instr) if isinstance(instr, Phi) \
                    else None
                if phi_slot is not None:
                    current[phi_slot] = instr
                    continue
                if isinstance(instr, Load) and instr.addr in slots:
                    replacements[instr] = current.get(instr.addr,
                                                      zero[instr.addr])
                    to_remove.append(instr)
                elif isinstance(instr, Store) and instr.addr in slots:
                    value = instr.value
                    value = replacements.get(value, value)
                    current[instr.addr] = value
                    to_remove.append(instr)
            for succ in block.successors():
                for slot in slots:
                    phi = phis.get((slot, succ))
                    if phi is not None:
                        value = current.get(slot, zero[slot])
                        value = replacements.get(value, value)
                        phi.add_incoming(value, block)
            for child in children.get(block, ()):
                rename(child, current)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10000 + 10 * len(fn.blocks)))
        try:
            rename(fn.entry, {})
        finally:
            sys.setrecursionlimit(old_limit)

        # Accesses in unreachable blocks never get renamed; neutralise
        # them so removing the alloca leaves no dangling operands.
        for block in fn.blocks:
            if block in reachable:
                continue
            for instr in list(block.instructions):
                if isinstance(instr, Load) and instr.addr in slots:
                    replacements[instr] = zero[instr.addr]
                    to_remove.append(instr)
                elif isinstance(instr, Store) and instr.addr in slots:
                    to_remove.append(instr)

        # Resolve replacement chains and rewrite uses.
        def resolve(value):
            seen = set()
            while value in replacements and id(value) not in seen:
                seen.add(id(value))
                value = replacements[value]
            return value

        for instr in fn.instructions():
            for i, op in enumerate(instr.operands):
                instr.operands[i] = resolve(op)

        for instr in to_remove:
            if instr.parent is not None:
                instr.parent.remove(instr)
        for slot in slots:
            if slot.parent is not None:
                slot.parent.remove(slot)
        # Phis in unreachable blocks or with missing predecessors are left
        # to simplifycfg/DCE.
        return True


