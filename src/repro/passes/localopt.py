"""Local memory and value optimisations whose reach is gated by fences.

These are the passes whose effectiveness the paper's fence-removal
optimisation "unlocks" (§3.4, Table 2 FO columns):

* :class:`LoadElim` — redundant-load elimination and store-to-load
  forwarding inside a block.  Any memory barrier (fence, atomic, call,
  compiler barrier) invalidates known memory contents, so IR carrying a
  fence after every load and before every store gets *no* benefit.
* :class:`DSE` — dead store elimination inside a block, equally gated.
* :class:`LocalCSE` — common subexpression elimination for pure ops
  (unaffected by fences; included for a realistic O2-level pipeline).

Aliasing uses :mod:`repro.passes.alias`: base+offset reasoning over SSA
roots plus the thread-exclusivity of the emulated stack, mirroring what
LLVM's basic AA recovers from lifted code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (AtomicRMW, BinOp, Call, Cast, Cmpxchg, CompilerBarrier,
                  ConstantInt, Fence, Function, ICmp, Instruction, Load,
                  Module, Select, Store, replace_all_uses)
from .alias import AddrKey, access_is_stack, may_alias, symbolic_addr
from .manager import Pass


class _Entry:
    __slots__ = ("key", "width", "stack", "value")

    def __init__(self, key: AddrKey, width: int, stack: bool, value) -> None:
        self.key = key
        self.width = width
        self.stack = stack
        self.value = value


class LoadElim(Pass):
    """Forward stores/loads to later same-location loads within a block."""
    name = "loadelim"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Forward within each block; fences and clobbers cut the window."""
        changed = False
        for block in fn.blocks:
            available: List[_Entry] = []
            replacements: List[Tuple[Load, object]] = []
            for instr in block.instructions:
                if isinstance(instr, (Fence, CompilerBarrier, Call,
                                      Cmpxchg, AtomicRMW)):
                    available = []
                    continue
                if isinstance(instr, Load):
                    if instr.ordering is not None:
                        available = []
                        continue
                    key = symbolic_addr(instr.addr)
                    stack = access_is_stack(instr)
                    known = None
                    for entry in available:
                        if entry.key == key and entry.width == instr.width:
                            known = entry.value
                            break
                    if known is not None and known.type == instr.type:
                        replacements.append((instr, known))
                    else:
                        available.append(_Entry(key, instr.width, stack,
                                                instr))
                    continue
                if isinstance(instr, Store):
                    if instr.ordering is not None:
                        available = []
                        continue
                    key = symbolic_addr(instr.addr)
                    stack = access_is_stack(instr)
                    available = [
                        entry for entry in available
                        if not may_alias(key, instr.width, stack,
                                         entry.key, entry.width,
                                         entry.stack)]
                    available.append(_Entry(key, instr.width, stack,
                                            instr.value))
                    continue
            replaced: Dict[Instruction, object] = {
                load: value for load, value in replacements}

            def resolve(value):
                seen = set()
                while value in replaced and id(value) not in seen:
                    seen.add(id(value))
                    value = replaced[value]
                return value

            for load, value in replacements:
                replace_all_uses(fn, load, resolve(value))
                if load.parent is not None:
                    load.parent.remove(load)
                changed = True
        return changed


class DSE(Pass):
    """Remove stores overwritten before any possible observation."""
    name = "dse"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Backward sweep per block; fences/calls keep stores alive."""
        changed = False
        for block in fn.blocks:
            overwritten: List[_Entry] = []
            dead: List[Store] = []
            for instr in reversed(block.instructions):
                if isinstance(instr, (Fence, CompilerBarrier, Call,
                                      Cmpxchg, AtomicRMW)):
                    overwritten = []
                    continue
                if isinstance(instr, Load):
                    if instr.ordering is not None:
                        overwritten = []
                        continue
                    key = symbolic_addr(instr.addr)
                    stack = access_is_stack(instr)
                    overwritten = [
                        entry for entry in overwritten
                        if not may_alias(key, instr.width, stack,
                                         entry.key, entry.width,
                                         entry.stack)]
                    continue
                if isinstance(instr, Store):
                    if instr.ordering is not None:
                        overwritten = []
                        continue
                    key = symbolic_addr(instr.addr)
                    stack = access_is_stack(instr)
                    covered = any(
                        entry.key == key and entry.width == instr.width
                        for entry in overwritten)
                    if covered:
                        dead.append(instr)
                    else:
                        overwritten.append(_Entry(key, instr.width, stack,
                                                  None))
            for store in dead:
                block.remove(store)
                changed = True
        return changed


class LocalCSE(Pass):
    """Reuse identical pure computations within a block."""
    name = "localcse"

    def run_function(self, fn: Function, module: Module) -> bool:
        """Hash-and-replace sweep over each block."""
        changed = False
        for block in fn.blocks:
            seen: Dict[tuple, Instruction] = {}
            replacements: List[Tuple[Instruction, Instruction]] = []
            for instr in block.instructions:
                key = self._key(instr)
                if key is None:
                    continue
                prior = seen.get(key)
                if prior is not None:
                    replacements.append((instr, prior))
                else:
                    seen[key] = instr
            for instr, prior in replacements:
                replace_all_uses(fn, instr, prior)
                if instr.parent is not None:
                    instr.parent.remove(instr)
                changed = True
        return changed

    @staticmethod
    def _key(instr: Instruction) -> Optional[tuple]:
        def op_key(op):
            if isinstance(op, ConstantInt):
                return ("c", op.value, op.type.bits)
            return id(op)

        if isinstance(instr, BinOp):
            return ("bin", instr.op, instr.type.bits,
                    tuple(op_key(o) for o in instr.operands))
        if isinstance(instr, ICmp):
            return ("icmp", instr.pred,
                    tuple(op_key(o) for o in instr.operands))
        if isinstance(instr, Cast):
            return ("cast", instr.kind, instr.type.bits,
                    op_key(instr.operands[0]))
        if isinstance(instr, Select):
            return ("select", tuple(op_key(o) for o in instr.operands))
        return None
