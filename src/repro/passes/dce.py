"""Dead code elimination (mark and sweep, handles cyclic phi webs)."""

from __future__ import annotations

from typing import List, Set

from ..ir import Function, Instruction, Module, Phi
from .manager import Pass


class DCE(Pass):
    """Remove unused side-effect-free instructions (backwards sweep)."""
    name = "dce"

    def run_function(self, fn: Function, module: Module) -> bool:
        """One elimination sweep; returns True if anything died."""
        live: Set[Instruction] = set()
        work: List[Instruction] = []
        for instr in fn.instructions():
            if instr.has_side_effects:
                live.add(instr)
                work.append(instr)
        while work:
            instr = work.pop()
            for op in instr.operands:
                if isinstance(op, Instruction) and op not in live:
                    live.add(op)
                    work.append(op)
        changed = False
        for block in fn.blocks:
            for instr in list(block.instructions):
                if instr not in live:
                    block.remove(instr)
                    changed = True
        return changed
