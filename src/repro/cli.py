"""The ``polynima`` command-line utility.

"Polynima can be accessed through a single command-line utility that
provides facilities for project management, disassembly, lifting and
(additive) recompilation of binaries" (§4).

Subcommands::

    polynima compile  <src.c> -o prog.vxe [-O{0,2,3}]   # MiniC front end
    polynima run      <prog.vxe> [--param N ...]
    polynima disasm   <prog.vxe> [--json cfg.json]
    polynima trace    <prog.vxe> --cfg cfg.json         # ICFT tracer
    polynima lift     <prog.vxe> [--cfg cfg.json]       # print lifted IR
    polynima recompile <prog.vxe> -o out.vxe [--additive] [--fence-opt]
                       [--trace-out trace.json]         # Chrome trace
    polynima stats    <prog.vxe> [--json out.json] [--tsan]  # counters
    polynima tsan     <prog.vxe> [--strict] [--json]    # race detector
    polynima workloads [--group phoenix]                # list benchmarks
    polynima batch    [manifest.json | --group phoenix] # parallel + cached
                      [--jobs N] [--cache-dir D] [--no-cache] [--verify]
                      [--profile-in prof.json]
    polynima profile collect <prog.vxe> -o prof.json    # PGO: record
    polynima profile merge   a.json b.json -o out.json  # PGO: combine
    polynima profile show    prof.json [--json]         # PGO: inspect
    polynima serve    [--port N] [--workers N]          # recompilation daemon
    polynima submit   <prog.vxe> -o out.vxe             # client for serve

Full reference with examples: ``docs/CLI.md``; the profile-guided
workflow is walked through in ``docs/PGO.md``; the service is
documented in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .binfmt import Image
from .core import (AdditiveLifting, Disassembler, ICFTTracer, Lifter,
                   Recompiler, make_library, optimize_fences, run_image)
from .emulator import EmulationFault, Machine
from .ir import format_module
from .minicc import compile_minic
from .observability import Tracer


def _library_from_args(args) -> object:
    params = tuple(int(p) for p in (args.param or []))
    blob = b""
    if getattr(args, "input", None):
        with open(args.input, "rb") as handle:
            blob = handle.read()
    return make_library(input_blob=blob, params=params)


def cmd_compile(args) -> int:
    """``polynima compile``: MiniC source -> VXE image."""
    with open(args.source) as handle:
        source = handle.read()
    image = compile_minic(source, opt_level=args.opt, name=args.source)
    image.save(args.output)
    print(f"wrote {args.output} "
          f"({sum(s.size for s in image.sections)} bytes, O{args.opt})")
    return 0


def cmd_run(args) -> int:
    """``polynima run``: execute a VXE image on the emulator."""
    image = Image.load(args.binary)
    jit_profile = None
    if getattr(args, "jit_profile_in", None):
        from .profile import Profile
        jit_profile = Profile.load(args.jit_profile_in)
    result = run_image(image, library=_library_from_args(args),
                       seed=args.seed, engine=args.engine,
                       jit_profile=jit_profile)
    sys.stdout.write(result.stdout.decode("latin1"))
    if result.fault is not None:
        print(f"[fault] {result.fault}", file=sys.stderr)
        return 1
    print(f"[exit {result.exit_code}; {result.instructions} instructions, "
          f"{result.total_cycles} cycles]", file=sys.stderr)
    return result.exit_code


def cmd_disasm(args) -> int:
    """``polynima disasm``: static CFG recovery, text or JSON."""
    image = Image.load(args.binary)
    cfg = Disassembler(image).recover()
    if args.json:
        cfg.save(args.json)
        print(f"wrote {args.json}")
    print(f"{len(cfg.functions)} functions, {cfg.total_blocks()} blocks, "
          f"{cfg.total_indirect_sites()} indirect sites")
    for entry in sorted(cfg.functions):
        fn = cfg.functions[entry]
        print(f"  fn {entry:#x}: {len(fn.blocks)} blocks")
    return 0


def cmd_trace(args) -> int:
    """``polynima trace``: run the ICFT tracer and emit its CFG deltas."""
    image = Image.load(args.binary)
    tracer = ICFTTracer(image)
    result = tracer.trace(lambda _item: _library_from_args(args),
                          inputs=[None], seed=args.seed)
    print(f"traced {result.instructions} instructions, "
          f"{result.total_icfts} ICFTs")
    if args.cfg:
        from .core import RecoveredCFG
        try:
            cfg = RecoveredCFG.load(args.cfg)
        except FileNotFoundError:
            cfg = Recompiler(image).recover_cfg()
        added = result.apply_to(cfg)
        cfg.save(args.cfg)
        print(f"augmented {args.cfg} (+{added} targets)")
    return 0


def cmd_lift(args) -> int:
    """``polynima lift``: print the optimised Poly IR for an image."""
    image = Image.load(args.binary)
    recompiler = Recompiler(image)
    if args.cfg:
        from .core import RecoveredCFG
        cfg = RecoveredCFG.load(args.cfg)
    else:
        cfg = recompiler.recover_cfg()
    module = Lifter(image, cfg).lift()
    print(format_module(module))
    return 0


def cmd_recompile(args) -> int:
    """``polynima recompile``: produce the standalone replacement binary."""
    image = Image.load(args.binary)
    tracer = Tracer()
    profile = None
    if getattr(args, "profile_in", None):
        from .profile import Profile
        profile = Profile.load(args.profile_in)
        print(f"guiding with profile {profile.digest()[:12]} "
              f"({len(profile.block_counts)} blocks, "
              f"{profile.runs} runs)")
    if args.fence_opt:
        with tracer.span("recompile.fence_opt"):
            report = optimize_fences(image, lambda: _library_from_args(args),
                                     seed=args.seed, profile=profile)
        result = report.result
        print(f"fence optimisation "
              f"{'applied' if report.applied else 'NOT applied'} "
              f"({report.spinloops.count('spinning')} spinning, "
              f"{report.spinloops.count('non-spinning')} non-spinning, "
              f"{report.spinloops.count('uncovered')} uncovered loops)")
    elif args.additive:
        lifting = AdditiveLifting(
            Recompiler(image, profile=profile, tracer=tracer))
        report = lifting.run(lambda: _library_from_args(args),
                             seed=args.seed)
        result = report.result
        print(f"additive lifting: {report.recompile_loops} recompilation "
              f"loops, {report.total_seconds:.2f}s")
    else:
        result = Recompiler(image, profile=profile,
                            tracer=tracer).recompile()
    result.image.save(args.output)
    if args.trace_out:
        trace_source = result.tracer or tracer
        trace_source.save(args.trace_out)
        print(f"wrote {args.trace_out} "
              f"({len(trace_source.spans)} spans)")
    stats = result.stats
    print(f"wrote {args.output}: {stats.functions} functions, "
          f"{stats.blocks} blocks, {stats.icfts} ICFTs, "
          f"{stats.fences_final} fences, {stats.total_seconds:.2f}s")
    return 0


def cmd_stats(args) -> int:
    """``polynima stats``: run a binary and print emulator perf counters."""
    image = Image.load(args.binary)
    sanitizer = None
    if args.tsan:
        from .sanitizers import RaceDetector
        sanitizer = RaceDetector()
    machine = Machine(image, _library_from_args(args), seed=args.seed,
                      profile_registers=args.profile_regs,
                      sanitizer=sanitizer)
    try:
        machine.run()
    except EmulationFault as exc:
        print(f"[fault] {exc}", file=sys.stderr)
    counters = machine.perf_counters()
    sys.stdout.write(machine.stdout.decode("latin1"))
    if machine.stdout and not machine.stdout.endswith(b"\n"):
        print()
    print(f"--- emulator counters ({args.binary}, seed {args.seed}) ---")
    print(counters.format_table())
    if sanitizer is not None and sanitizer.reports:
        print(sanitizer.report_text())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(counters.snapshot(), handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    if machine.fault is not None:
        return 1
    if sanitizer is not None and sanitizer.reports:
        return 1        # CI gates on races via the exit status
    return 0


def cmd_tsan(args) -> int:
    """``polynima tsan``: run a binary under the race detector.

    Exit status: 0 clean, 1 races reported, 2 emulation fault.
    """
    from .core import run_image as _run_image
    from .sanitizers import RaceDetector
    image = Image.load(args.binary)
    detector = RaceDetector(mode="strict" if args.strict else "full",
                            max_reports=args.max_reports)
    result = _run_image(image, library=_library_from_args(args),
                        seed=args.seed, sanitizer=detector)
    if args.json:
        payload = {
            "binary": args.binary,
            "seed": args.seed,
            "mode": detector.mode,
            "fault": str(result.fault) if result.fault else None,
            "races": [r.as_dict() for r in detector.reports],
            "counters": detector.counters().snapshot(),
        }
        json.dump(payload, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        sys.stdout.write(result.stdout.decode("latin1"))
        if result.stdout and not result.stdout.endswith(b"\n"):
            print()
        if result.fault is not None:
            print(f"[fault] {result.fault}", file=sys.stderr)
        print(f"--- {detector.mode}-mode race detection "
              f"({args.binary}, seed {args.seed}) ---")
        print(detector.report_text())
    if result.fault is not None:
        return 2
    return 1 if detector.reports else 0


def cmd_workloads(args) -> int:
    """``polynima workloads``: list the bundled benchmark programs."""
    from .workloads import ALL_WORKLOADS
    for wl in ALL_WORKLOADS:
        if args.group and wl.group != args.group:
            continue
        sizes = ", ".join(sorted(wl.inputs))
        print(f"{wl.name:20s} {wl.group:10s} inputs: {sizes}")
    return 0


def cmd_profile_collect(args) -> int:
    """``polynima profile collect``: record an execution profile of a
    binary by running it on the profiling emulator."""
    from .profile import ProfileCollector
    image = Image.load(args.binary)
    collector = ProfileCollector(image)
    profile = collector.collect(
        lambda _item: _library_from_args(args),
        inputs=[None] * args.runs, seed=args.seed, engine=args.engine)
    profile.save(args.output)
    info = profile.summary()
    print(f"wrote {args.output}: digest {info['digest'][:12]}, "
          f"{info['runs']} runs, {info['instructions']} instructions, "
          f"{info['blocks_profiled']} blocks, {info['loops']} loops")
    return 0


def cmd_profile_merge(args) -> int:
    """``polynima profile merge``: combine profiles of the same binary
    (e.g. one per input) into a single profile."""
    from .profile import Profile
    merged = Profile.load(args.profiles[0])
    for path in args.profiles[1:]:
        merged.merge(Profile.load(path))
    merged.save(args.output)
    print(f"wrote {args.output}: digest {merged.digest()[:12]}, "
          f"{merged.runs} runs over {len(args.profiles)} profiles")
    return 0


def cmd_profile_show(args) -> int:
    """``polynima profile show``: print a profile's headline numbers."""
    from .profile import Profile
    profile = Profile.load(args.profile)
    info = profile.summary()
    if args.json:
        json.dump(info, sys.stdout, indent=1, sort_keys=True)
        print()
        return 0
    width = max(len(key) for key in info)
    for key, value in info.items():
        print(f"{key:{width}s}  {value}")
    hottest = profile.hottest_blocks(args.top)
    if hottest:
        print(f"--- hottest {len(hottest)} blocks ---")
        for addr, count in hottest:
            print(f"{addr:#10x}  {count}")
    return 0


def cmd_batch(args) -> int:
    """``polynima batch``: recompile many binaries in parallel through
    the content-addressed artifact cache.

    Jobs come from a JSON manifest (see ``docs/CLI.md``) or are built
    from ``--group``/``--workload``/``--opt``.  Exit status: 0 when
    every job succeeded, 1 otherwise.
    """
    from .core import (ArtifactCache, BatchError, default_cache_dir,
                       jobs_for_group, load_manifest, run_batch)
    try:
        if args.manifest:
            jobs = load_manifest(args.manifest)
        elif args.group:
            jobs = jobs_for_group(
                args.group, opt_levels=tuple(args.opt or [3]),
                names=args.workload or None, fence_opt=args.fence_opt,
                seed=args.seed, size=args.size)
        else:
            print("batch: need a manifest file or --group", file=sys.stderr)
            return 2
        if args.profile_in:
            for job in jobs:
                job.profile = args.profile_in
        cache = None
        if not args.no_cache:
            cache = ArtifactCache(args.cache_dir or default_cache_dir())
        result = run_batch(jobs, jobs_n=args.jobs, cache=cache,
                           verify=args.verify)
    except BatchError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return 2
    print(result.format_summary())
    for job in result.results:
        if job.error:
            print(f"[{job.name}] {job.error}", file=sys.stderr)
    if args.trace_out:
        result.save_trace(args.trace_out)
        print(f"wrote {args.trace_out}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.as_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


def cmd_serve(args) -> int:
    """``polynima serve``: run the recompilation daemon until
    SIGTERM/SIGINT, then drain gracefully and exit 0."""
    import asyncio

    from .core import ArtifactCache, default_cache_dir
    from .service import RecompileService
    cache = None
    if not args.no_cache:
        cache = ArtifactCache(args.cache_dir or default_cache_dir())
    service = RecompileService(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue_limit, cache=cache,
        job_timeout=args.job_timeout, retries=args.retries,
        executor="thread" if args.thread_executor else "process",
        metrics_out=args.metrics_out, verbose=not args.quiet)

    # The ready line is a contract: scripts (and the CI smoke job)
    # parse it to learn the ephemeral port.
    asyncio.run(service.run(on_ready=lambda s: print(
        f"polynima-service listening on {s.host}:{s.port}", flush=True)))
    return 0


def cmd_submit(args) -> int:
    """``polynima submit``: send one recompilation to a running
    ``polynima serve`` daemon and (by default) wait for the artifact.

    Exit status: 0 done, 1 job failed, 2 rejected/unreachable.
    """
    from .service import ErrorResponse, ServiceClient, ServiceError
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    options = dict(opt_level=args.opt, size=args.size, seed=args.seed,
                   fence_opt=args.fence_opt, profile=args.profile_in,
                   priority=args.priority)
    try:
        if args.workload:
            submitted = client.submit(workload=args.workload, **options)
        elif args.binary:
            with open(args.binary, "rb") as handle:
                submitted = client.submit(image_bytes=handle.read(),
                                          **options)
        else:
            print("submit: need a binary path or --workload",
                  file=sys.stderr)
            return 2
        if isinstance(submitted, ErrorResponse):
            hint = (f" (retry after {submitted.retry_after}s)"
                    if submitted.retry_after else "")
            print(f"submit: rejected ({submitted.code}): "
                  f"{submitted.error}{hint}", file=sys.stderr)
            return 2
        print(f"submitted {submitted.job_id} digest "
              f"{submitted.digest[:12]} "
              f"({'coalesced' if submitted.coalesced else 'queued'}, "
              f"queue depth {submitted.queue_depth})")
        if args.no_wait:
            return 0
        result = client.result(submitted.job_id, wait=True,
                               timeout=args.timeout)
    except ServiceError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    if isinstance(result, ErrorResponse) or result.error is not None:
        error = result.error
        print(f"submit: job failed: {error}", file=sys.stderr)
        return 1
    if args.json:
        payload = result.as_dict()
        payload.pop("image_b64", None)
        json.dump(payload, sys.stdout, indent=1, sort_keys=True)
        print()
    if args.output:
        image = result.image_bytes()
        with open(args.output, "wb") as handle:
            handle.write(image or b"")
        print(f"wrote {args.output} ({len(image or b'')} bytes, "
              f"{'cache hit' if result.cached else 'recompiled'}, "
              f"{result.seconds:.2f}s)")
    else:
        print(f"{submitted.job_id} {result.state}: sha256 "
              f"{result.image_sha256[:12]}, "
              f"{'cache hit' if result.cached else 'recompiled'}, "
              f"{result.seconds:.2f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="polynima",
        description="Practical hybrid recompilation for multithreaded "
                    "binaries (EuroSys 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC source to a VXE binary")
    p.add_argument("source")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("-O", "--opt", type=int, default=0, choices=(0, 2, 3))
    p.set_defaults(func=cmd_compile)

    def common_run_args(p):
        """Attach the shared --seed/--params/--max-cycles options."""
        p.add_argument("--param", action="append",
                       help="integer parameter (repeatable)")
        p.add_argument("--input", help="input blob file")
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("run", help="execute a VXE binary")
    p.add_argument("binary")
    common_run_args(p)
    p.add_argument("--engine", choices=("fast", "reference", "jit"),
                   default="fast",
                   help="interpreter loop: plan-cache/superblock engine, "
                        "the seed reference loop, or the tier-3 trace "
                        "JIT (all bit-identical)")
    p.add_argument("--jit-profile-in",
                   help="profile JSON whose hot blocks pre-seed the "
                        "tier-3 trace compiler (jit engine only)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="static control-flow recovery")
    p.add_argument("binary")
    p.add_argument("--json", help="write the CFG JSON here")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("trace", help="run the ICFT tracer")
    p.add_argument("binary")
    p.add_argument("--cfg", help="CFG JSON to augment")
    common_run_args(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("lift", help="print the lifted IR")
    p.add_argument("binary")
    p.add_argument("--cfg")
    p.set_defaults(func=cmd_lift)

    p = sub.add_parser("recompile", help="produce a recompiled binary")
    p.add_argument("binary")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--additive", action="store_true",
                   help="run the additive-lifting loop against the input")
    p.add_argument("--fence-opt", action="store_true",
                   help="run the §3.4 fence-removal analysis")
    p.add_argument("--trace-out", metavar="TRACE.json",
                   help="write a Chrome-trace JSON of the pipeline "
                        "stages (open in chrome://tracing or Perfetto)")
    p.add_argument("--profile-in", metavar="PROF.json",
                   help="guide the recompilation with this execution "
                        "profile (see 'polynima profile collect')")
    common_run_args(p)
    p.set_defaults(func=cmd_recompile)

    p = sub.add_parser("stats", help="run a binary and print emulator "
                                     "perf counters")
    p.add_argument("binary")
    p.add_argument("--json", help="also dump the counters as JSON here")
    p.add_argument("--profile-regs", action="store_true",
                   help="count per-thread register-file traffic "
                        "(slower emulation)")
    p.add_argument("--tsan", action="store_true",
                   help="attach the race detector; adds sanitizer.* "
                        "counters and fails on reported races")
    common_run_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("tsan", help="run a binary under the happens-"
                                    "before race detector")
    p.add_argument("binary")
    p.add_argument("--strict", action="store_true",
                   help="instruction-level happens-before only (the "
                        "differential fence-oracle mode)")
    p.add_argument("--max-reports", type=int, default=100,
                   help="cap on stored race reports (default 100)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON on stdout")
    common_run_args(p)
    p.set_defaults(func=cmd_tsan)

    p = sub.add_parser("workloads", help="list benchmark workloads")
    p.add_argument("--group")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("profile", help="collect, merge and inspect "
                                       "execution profiles (PGO)")
    psub = p.add_subparsers(dest="profile_command", required=True)

    pc = psub.add_parser("collect", help="profile a binary's execution")
    pc.add_argument("binary")
    pc.add_argument("-o", "--output", required=True,
                    help="write the profile JSON here")
    pc.add_argument("--runs", type=int, default=1,
                    help="executions to merge (run i uses seed+i; "
                         "default 1)")
    pc.add_argument("--engine", choices=("fast", "reference", "jit"),
                    default="fast",
                    help="emulator engine to profile under (profiles "
                         "from all engines are digest-identical)")
    common_run_args(pc)
    pc.set_defaults(func=cmd_profile_collect)

    pm = psub.add_parser("merge", help="combine profiles of one binary")
    pm.add_argument("profiles", nargs="+",
                    help="profile JSON files (same image)")
    pm.add_argument("-o", "--output", required=True)
    pm.set_defaults(func=cmd_profile_merge)

    ps = psub.add_parser("show", help="print a profile summary")
    ps.add_argument("profile")
    ps.add_argument("--json", action="store_true",
                    help="emit the summary as JSON on stdout")
    ps.add_argument("--top", type=int, default=10, metavar="N",
                    help="hottest blocks to list (default 10)")
    ps.set_defaults(func=cmd_profile_show)

    p = sub.add_parser("batch", help="parallel batch recompilation "
                                     "through the artifact cache")
    p.add_argument("manifest", nargs="?",
                   help="JSON job manifest ({'jobs': [...]} or a bare "
                        "list); omit to use --group/--workload")
    p.add_argument("--group",
                   help="build jobs from a workload suite "
                        "(phoenix/gapbs/ckit/realworld/spec)")
    p.add_argument("--workload", action="append", metavar="NAME",
                   help="restrict --group to these workloads (repeatable)")
    p.add_argument("--opt", action="append", type=int, metavar="N",
                   choices=(0, 2, 3),
                   help="opt level(s) for --group jobs (repeatable; "
                        "default 3)")
    p.add_argument("--fence-opt", action="store_true",
                   help="run the §3.4 fence-removal analysis per job")
    p.add_argument("--size", help="workload input size tier")
    p.add_argument("--seed", type=int, default=21,
                   help="seed for the dynamic analyses (default 21)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default 1 = in-process)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact cache directory (default "
                        "$POLYNIMA_CACHE_DIR or ~/.cache/polynima)")
    p.add_argument("--no-cache", action="store_true",
                   help="always recompile; do not read or write the cache")
    p.add_argument("--verify", action="store_true",
                   help="on every cache hit, recompile fresh and fail "
                        "unless the artifact is bit-identical")
    p.add_argument("--profile-in", metavar="PROF.json",
                   help="guide every job with this execution profile "
                        "(its digest joins each job's cache key)")
    p.add_argument("--trace-out", metavar="TRACE.json",
                   help="write a merged Chrome trace (one lane per job)")
    p.add_argument("--json", metavar="OUT.json",
                   help="write the batch summary as JSON")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser("serve", help="run the recompilation-as-a-"
                                     "service daemon")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7421,
                   help="TCP port (default 7421; 0 picks an ephemeral "
                        "port, printed in the ready line)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent pipeline executions (default 2)")
    p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                   help="queued-job bound; beyond it submits get a "
                        "'busy' response with a retry_after hint "
                        "(default 32)")
    p.add_argument("--cache-dir", metavar="DIR",
                   help="artifact cache directory (default "
                        "$POLYNIMA_CACHE_DIR or ~/.cache/polynima)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the artifact cache (every job "
                        "recompiles)")
    p.add_argument("--job-timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="per-job execution budget (default 600)")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="retry attempts per failing job, with "
                        "exponential backoff + jitter (default 1)")
    p.add_argument("--thread-executor", action="store_true",
                   help="run jobs on threads instead of forked worker "
                        "processes (hosts where fork is unavailable)")
    p.add_argument("--metrics-out", metavar="OUT.json",
                   help="write a final counters snapshot here when the "
                        "server drains")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job log lines on stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit one recompilation to a "
                                      "running serve daemon")
    p.add_argument("binary", nargs="?",
                   help=".vxe binary to recompile (shipped inline; "
                        "omit to use --workload)")
    p.add_argument("--workload", metavar="NAME",
                   help="submit a registry workload (full hybrid "
                        "pipeline) instead of a binary")
    p.add_argument("--host", default="127.0.0.1",
                   help="service host (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=7421,
                   help="service port (default 7421)")
    p.add_argument("-o", "--output", metavar="OUT.vxe",
                   help="write the recompiled artifact here")
    p.add_argument("--opt", type=int, default=3, choices=(0, 2, 3),
                   help="workload opt level (default 3; workload "
                        "submissions only)")
    p.add_argument("--size", help="workload input size tier")
    p.add_argument("--seed", type=int, default=21,
                   help="seed for the dynamic analyses (default 21)")
    p.add_argument("--fence-opt", action="store_true",
                   help="run the §3.4 fence-removal analysis "
                        "(workload submissions only)")
    p.add_argument("--profile-in", metavar="PROF.json",
                   help="server-side path of a guiding execution "
                        "profile (digest joins the cache key)")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority; lower runs earlier (default 0)")
    p.add_argument("--no-wait", action="store_true",
                   help="return after enqueueing; poll later via the "
                        "job id")
    p.add_argument("--timeout", type=float, default=600.0,
                   metavar="SECONDS",
                   help="client-side wait budget (default 600)")
    p.add_argument("--json", action="store_true",
                   help="print the result metadata as JSON on stdout")
    p.set_defaults(func=cmd_submit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
